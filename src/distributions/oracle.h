// The counting oracle — the paper's central abstraction.
//
// All samplers in pardpp are reductions from sampling to counting: they
// interact with a distribution mu on size-k subsets of a ground set only
// through the queries below (paper §1: "the oracle returns
// sum { mu(S) : T ⊆ S }", normalized here to joint marginals, plus
// self-reducibility via conditioning). Determinantal families implement
// the interface with linear algebra; the §7 hard instance implements it
// combinatorially; the test suite implements it by exhaustive enumeration.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "parallel/execution.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/random.h"

namespace pardpp {

/// Counting-oracle access to a distribution mu on ([m] choose k), where m
/// = ground_size() and k = sample_size() refer to the *current
/// conditional* distribution (conditioning re-indexes the ground set by
/// deleting the conditioned elements and preserving the order of the
/// rest).
class CountingOracle;
class CommittedOracle;

/// Per-family inputs of the intermediate-sampling (distillation) front
/// end (DESIGN.md §2 convention 8). `weights` are nonnegative per-item
/// proposal weights whose diagonal dominates the family's determinantal
/// mass (the ensemble diagonal: row norms² for the low-rank family,
/// L_ii for the symmetric family) — restricting with the matching
/// inverse-weight row scales keeps the restricted ensemble's trace at
/// exactly sum(weights). `rank_bound` caps the number of nonzero
/// eigenvalues any restriction can have (the feature dimension d for the
/// low-rank family, n for dense symmetric). Empty weights = the family
/// does not support distillation.
struct DistillationProfile {
  std::vector<double> weights;
  std::size_t rank_bound = 0;
};

/// One exact draw from a conditional's singleton marginals.
struct MarginalDraw {
  int index = -1;  ///< current-conditional index, distributed as p_i / k
  /// log P[index ∈ S] when the drawing family knows it cheaply (the
  /// default categorical protocol does); NaN otherwise (the spectral
  /// two-stage protocol never materializes the marginal vector).
  double log_marginal = std::numeric_limits<double>::quiet_NaN();
};

/// Wave-scoped evaluator for a batch of counting queries against one
/// conditional distribution (DESIGN.md §2 convention 6).
///
/// All queries of one wave condition on the same prefix — the conditioning
/// already folded into the oracle they were issued against — so the
/// expensive shared factors (eigendecompositions, ESP tables, engine
/// caches) live on the oracle, primed once by `prepare_concurrent()`. A
/// ConditionalState adds the *query-scoped* machinery on top: reusable
/// scratch (Schur buffers, incremental Cholesky factors, spectra) that a
/// from-scratch `log_joint_marginal` would reallocate and refactor per
/// call. One state serves one thread; `query_many` builds one per
/// dispatched chunk so the setup amortizes across the chunk's queries.
///
/// `log_joint(t)` returns the same value as `log_joint_marginal(t)` up to
/// roundoff (the oracle property tests pin the agreement at 1e-10).
class ConditionalState {
 public:
  virtual ~ConditionalState() = default;

  /// log P[T ⊆ S] of the oracle this state was created from. Non-const:
  /// implementations scribble on owned scratch.
  [[nodiscard]] virtual double log_joint(std::span<const int> t) = 0;
};

class CountingOracle {
 public:
  virtual ~CountingOracle() = default;

  /// Size of the current ground set.
  [[nodiscard]] virtual std::size_t ground_size() const = 0;

  /// Number of elements a sample of the current conditional contains.
  [[nodiscard]] virtual std::size_t sample_size() const = 0;

  /// log P_{S ~ mu}[T ⊆ S]. T must contain distinct in-range indices;
  /// |T| > sample_size() yields -inf. This is the paper's counting query,
  /// normalized by the partition function.
  [[nodiscard]] virtual double log_joint_marginal(
      std::span<const int> t) const = 0;

  /// Singleton marginals P[i ∈ S] for every ground element; the entries
  /// sum to sample_size().
  [[nodiscard]] virtual std::vector<double> marginals() const = 0;

  /// Draws one element with probability p_i / k — the sequential
  /// reduction's per-round step. The default materializes `marginals()`
  /// and draws categorically (one variate); the low-rank feature family
  /// overrides with the exact two-stage mixture draw (eigenmode ~ ESP
  /// weight, then item ~ squared eigenvector entry), which never
  /// assembles the marginal vector. The draw *protocol* — how many
  /// variates are consumed, from which distributions — is a per-family
  /// determinism invariant (DESIGN.md §2 convention 7): every
  /// implementation of one family's conditional must consume the stream
  /// identically, so the commit path and the condition() reference path
  /// replay the same sample from one seed.
  [[nodiscard]] virtual MarginalDraw draw_marginal(RandomStream& rng) const {
    const std::vector<double> p = marginals();
    MarginalDraw draw;
    draw.index = static_cast<int>(rng.categorical(p));
    draw.log_marginal = std::log(p[static_cast<std::size_t>(draw.index)]);
    return draw;
  }

  /// The conditional distribution mu(· | T ⊆ S), over the ground set with
  /// T removed. Throws if P[T ⊆ S] = 0.
  [[nodiscard]] virtual std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const = 0;

  /// The same distribution family over the (possibly repeated) ground
  /// elements `items`, with row j of the restricted ensemble scaled by
  /// `scales[j]` (empty = all ones): for an L-ensemble family the
  /// restricted kernel is diag(s) L_items diag(s). Index j of the
  /// restricted oracle refers to items[j]; repeated items yield parallel
  /// (hence never co-selected) rows — the construction the distillation
  /// front end (sampling/intermediate.h) relies on. Default: unsupported.
  [[nodiscard]] virtual std::unique_ptr<CountingOracle> restrict_to(
      std::span<const int> items, std::span<const double> scales) const {
    (void)items;
    (void)scales;
    throw InvalidArgument("restrict_to: unsupported for family " + name());
  }

  /// Per-item weights + rank bound for the distillation front end; empty
  /// weights (the default) = unsupported. Must not force the full-n
  /// spectral caches — profiles are read at session-prime time on ground
  /// sets far too large for an eigendecomposition.
  [[nodiscard]] virtual DistillationProfile distillation_profile() const {
    return {};
  }

  /// log of the family's absolute partition function (log e_k of the
  /// ensemble spectrum for the determinantal families) — the quantity the
  /// distillation acceptance ratio compares across restrictions. Returns
  /// -inf when the restricted ensemble cannot support a size-k sample.
  /// Throws for families without a canonical absolute normalization.
  [[nodiscard]] virtual double log_partition() const {
    throw InvalidArgument("log_partition: not exposed by family " + name());
  }

  [[nodiscard]] virtual std::unique_ptr<CountingOracle> clone() const = 0;

  /// Family name, for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Primes any lazily built internal state (eigendecompositions, node
  /// caches) so that subsequent const queries are data-race-free when
  /// issued from multiple threads. Implementations with lazy caches must
  /// override; stateless oracles need not.
  virtual void prepare_concurrent() const {}

  /// Creates a fresh query evaluator over this oracle's (already primed)
  /// shared factors. Callers that may run states concurrently must call
  /// prepare_concurrent() first — the state construction itself must not
  /// race on the lazy caches. The default state simply delegates to
  /// log_joint_marginal; determinantal oracles override with incremental
  /// paths (rank-1 Cholesky extension, scratch-reusing Schur complements,
  /// leave-one-out ESP lookups for singleton extensions).
  [[nodiscard]] virtual std::unique_ptr<ConditionalState>
  make_conditional_state() const;

  /// Batch counting query — one PRAM round of |ts| independent queries
  /// issued together: out[q] = log_joint_marginal(ts[q]) up to roundoff.
  /// The queries are spans into caller-owned storage (the samplers pass
  /// views over their proposal batches; nothing is copied). The default
  /// primes the lazy caches once, then services the queries in chunks on
  /// the context's pool, one ConditionalState per chunk: serial runs and
  /// large batches amortize the state's scratch across many queries,
  /// while a wave-sized batch on a multicore pool deliberately lands one
  /// query per chunk — state setup is trivia next to a query, and
  /// grouping queries there would serialize them and lengthen the wave's
  /// critical path.
  virtual void query_many(std::span<const std::span<const int>> ts,
                          std::span<double> out,
                          const ExecutionContext& ctx) const {
    check_arg(ts.size() == out.size(), "query_many: output size mismatch");
    prepare_concurrent();
    ctx.for_each_chunk(0, ts.size(), [&](std::size_t lo, std::size_t hi) {
      check_numeric(!failpoint("oracle.query_many"),
                    "query_many: injected chunk failure "
                    "[failpoint oracle.query_many]");
      const auto state = make_conditional_state();
      for (std::size_t q = lo; q < hi; ++q) out[q] = state->log_joint(ts[q]);
    });
  }

  /// Creates the run-scoped commit-path state (DESIGN.md §2 convention
  /// 7): a CommittedOracle answering queries against a conditional prefix
  /// that *grows in place* via `commit()`, instead of materializing a
  /// fresh conditioned oracle per accepted round. The default wraps the
  /// `condition()` chain — behaviourally identical to the pre-commit
  /// samplers, and the correctness reference the determinantal overrides
  /// are fuzzed against. Like make_conditional_state, callers that will
  /// run the returned state while other threads query this oracle must
  /// call prepare_concurrent() first.
  [[nodiscard]] virtual std::unique_ptr<CommittedOracle> make_committed()
      const;
};

/// A counting oracle over a *mutable* conditional prefix — the run-scoped
/// state of the sampler commit path (DESIGN.md §2 convention 7). All
/// CountingOracle queries refer to the current conditional (ground set
/// re-indexed by delete + compact, exactly like `condition()`);
/// `commit()` advances the prefix in place, absorbing the accepted
/// trial's work instead of rebuilding preprocessing from scratch, and
/// `reset()` rewinds to the base distribution so one state (and its
/// scratch) serves many draws. Implementations must keep the conditional
/// distribution — and the per-family draw/query protocols — identical to
/// the condition() chain's, so a fixed seed replays the same sample
/// through either path.
class CommittedOracle : public CountingOracle {
 public:
  /// Absorbs the accepted batch (current-conditional indices, distinct,
  /// P[batch ⊆ S] > 0): this oracle becomes the conditional given the
  /// batch. `log_joint` optionally passes the accepted trial's
  /// already-computed counting answer log P[batch ⊆ S] (NaN = unknown);
  /// families whose partition function is otherwise a full preprocessing
  /// sweep (the general/charpoly family) fold it into their cached
  /// normalization instead of recomputing it.
  virtual void commit(
      std::span<const int> batch,
      double log_joint = std::numeric_limits<double>::quiet_NaN()) = 0;

  /// Rewinds to the base distribution (committed prefix empty), keeping
  /// allocated scratch. The hook SamplerSession uses to amortize one
  /// state across many draws.
  virtual void reset() = 0;

  /// Number of elements committed since construction / the last reset.
  [[nodiscard]] virtual std::size_t committed_count() const = 0;

  /// log P[T ⊆ S] of the *base* distribution for the committed prefix T —
  /// the mass of the run so far, maintained incrementally by families
  /// that carry a committed factorization (the symmetric family's
  /// base-prefix Cholesky). NaN when the family does not track it (the
  /// default) or the tracking was disabled by a numerically borderline
  /// block; tests compare it against the base oracle's from-scratch
  /// log_joint_marginal.
  [[nodiscard]] virtual double log_committed_mass() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Number of full spectral (eigensolve) refreshes this state has paid
  /// since construction — the fallback counter of factorization-native
  /// commit paths (DESIGN.md §2 convention 9). Zero for families that
  /// never need one and for the condition() reference wrapper by
  /// construction. Monotone across reset(); samplers report per-run
  /// deltas (SampleDiagnostics::spectral_refreshes).
  [[nodiscard]] virtual std::size_t spectral_refreshes() const { return 0; }
};

namespace detail {

/// Default ConditionalState: from-scratch delegation, no shared factors
/// beyond what the oracle caches internally.
class DelegatingConditionalState final : public ConditionalState {
 public:
  explicit DelegatingConditionalState(const CountingOracle& oracle) noexcept
      : oracle_(oracle) {}
  [[nodiscard]] double log_joint(std::span<const int> t) override {
    return oracle_.log_joint_marginal(t);
  }

 private:
  const CountingOracle& oracle_;
};

/// CommittedOracle implemented on the `condition()` chain: every commit
/// materializes a fresh conditioned oracle, every reset a fresh clone of
/// the base. This is both the default for oracle families without an
/// incremental commit and the *reference path* the incremental overrides
/// are validated (and benchmarked) against — it pays the full per-round
/// preprocessing the commit path exists to avoid.
class ConditioningCommittedOracle final : public CommittedOracle {
 public:
  explicit ConditioningCommittedOracle(const CountingOracle& base)
      : base_(&base), current_(base.clone()) {}

  void commit(std::span<const int> batch, double /*log_joint*/) override {
    current_ = current_->condition(batch);
    committed_ += batch.size();
  }
  void reset() override {
    current_ = base_->clone();
    committed_ = 0;
  }
  [[nodiscard]] std::size_t committed_count() const override {
    return committed_;
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return current_->ground_size();
  }
  [[nodiscard]] std::size_t sample_size() const override {
    return current_->sample_size();
  }
  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    return current_->log_joint_marginal(t);
  }
  [[nodiscard]] std::vector<double> marginals() const override {
    return current_->marginals();
  }
  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override {
    return current_->draw_marginal(rng);
  }
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    return current_->condition(t);
  }
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    return current_->clone();
  }
  [[nodiscard]] std::string name() const override { return current_->name(); }
  void prepare_concurrent() const override { current_->prepare_concurrent(); }
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override {
    return current_->make_conditional_state();
  }
  void query_many(std::span<const std::span<const int>> ts,
                  std::span<double> out,
                  const ExecutionContext& ctx) const override {
    current_->query_many(ts, out, ctx);
  }

 private:
  const CountingOracle* base_;
  std::unique_ptr<CountingOracle> current_;
  std::size_t committed_ = 0;
};

}  // namespace detail

inline std::unique_ptr<ConditionalState>
CountingOracle::make_conditional_state() const {
  return std::make_unique<detail::DelegatingConditionalState>(*this);
}

inline std::unique_ptr<CommittedOracle> CountingOracle::make_committed()
    const {
  return std::make_unique<detail::ConditioningCommittedOracle>(*this);
}

/// The condition()-chain reference path for any oracle family, regardless
/// of whether the family overrides make_committed(). The throughput bench
/// and the commit-vs-reference tests drive both paths from one seed and
/// require identical samples.
[[nodiscard]] inline std::unique_ptr<CommittedOracle> make_condition_reference(
    const CountingOracle& base) {
  return std::make_unique<detail::ConditioningCommittedOracle>(base);
}

/// Maps indices of a repeatedly conditioned ground set back to original
/// element ids. Mirrors the re-indexing convention of
/// CountingOracle::condition (delete + compact, order preserved).
class IndexTracker {
 public:
  explicit IndexTracker(std::size_t n) : ids_(n) {
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<int>(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

  /// Original id of a current-index element.
  [[nodiscard]] int original(int current) const {
    check_arg(current >= 0 && static_cast<std::size_t>(current) < ids_.size(),
              "IndexTracker: index out of range");
    return ids_[static_cast<std::size_t>(current)];
  }

  [[nodiscard]] std::vector<int> originals(std::span<const int> current) const {
    std::vector<int> out;
    out.reserve(current.size());
    for (const int c : current) out.push_back(original(c));
    return out;
  }

  /// Removes the given current-index positions (they need not be sorted).
  void remove(std::vector<int> positions) {
    std::sort(positions.begin(), positions.end());
    std::vector<int> next;
    next.reserve(ids_.size() - positions.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (cursor < positions.size() &&
          positions[cursor] == static_cast<int>(i)) {
        check_arg(cursor + 1 == positions.size() ||
                      positions[cursor + 1] != positions[cursor],
                  "IndexTracker: duplicate position");
        ++cursor;
        continue;
      }
      next.push_back(ids_[i]);
    }
    check_arg(cursor == positions.size(), "IndexTracker: position out of range");
    ids_ = std::move(next);
  }

 private:
  std::vector<int> ids_;
};

}  // namespace pardpp
