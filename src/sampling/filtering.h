// Filtering sampler for spectrally bounded symmetric DPPs — Algorithm 4 /
// Theorem 41 (§8), plus the Bernoulli-product rejection sampler of
// Lemma 44 it is built on.
//
// Given an unconstrained symmetric DPP with marginal kernel K and
// sigma_max(K) <= sigma, set alpha = 1/(sigma sqrt(n)). Each of
// R = O(alpha^{-1} log(n/eps)) rounds samples T_i from the DPP with kernel
// alpha K^{(i)} — whose spectral norm is at most 1/sqrt(n), so a product
// of Bernoullis is an e^{o(1)}-accurate proposal (Lemma 44) — then updates
// the ensemble L^{(i+1)} = ((1-alpha) L^{(i)})^{T_i} (Prop. 42/43: thinning
// a DPP sample is a kernel rescaling). The union of the T_i converges to
// an exact sample in total variation (Prop. 43), with parallel depth
// ~ sigma sqrt(n) log(n/eps) instead of E|S| rounds.
#pragma once

#include "linalg/matrix.h"
#include "parallel/execution.h"
#include "parallel/pram.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct FilteringOptions {
  /// Total-variation budget.
  double eps = 0.05;
  /// Upper bound on sigma_max(K); 0 computes it exactly.
  double sigma = 0.0;
  /// Rounds = ceil(round_multiplier * log(n/eps) / alpha).
  double round_multiplier = 1.5;
  /// log C for the Lemma 44 rejection stage (the lemma bounds the true
  /// ratio by (1/eps)^{o(1)}).
  double log_ratio_cap = 2.5;
  /// Cap on |T| per round (the Omega of Lemma 44); 0 derives it from
  /// Lemma 14 concentration.
  std::size_t size_cap = 0;
  std::size_t machine_cap = 1u << 20;
};

/// Samples (approximately, within eps TV) from the unconstrained
/// symmetric DPP with ensemble matrix `l` via Algorithm 4, executing each
/// round's Bernoulli/rejection machines on the context's pool. A fixed
/// seed yields the identical sample at every pool size.
[[nodiscard]] SampleResult sample_filtering_dpp(
    const Matrix& l, RandomStream& rng, const ExecutionContext& ctx,
    const FilteringOptions& options = {});

/// Legacy ledger-only entry point: serial execution. The seed-to-sample
/// mapping differs from pre-ExecutionContext builds (see batched.h).
[[nodiscard]] SampleResult sample_filtering_dpp(
    const Matrix& l, RandomStream& rng, PramLedger* ledger = nullptr,
    const FilteringOptions& options = {});

/// Lemma 44 building block (exposed for tests and benches): samples the
/// unconstrained symmetric DPP with *marginal kernel* `kernel`
/// (sigma_max <= ~1/sqrt(n)) by proposing independent Bernoullis on the
/// diagonal and correcting by rejection, one wave of machines at a time.
[[nodiscard]] SampleResult sample_small_dpp_bernoulli(
    const Matrix& kernel, RandomStream& rng, const ExecutionContext& ctx,
    const FilteringOptions& options = {});

/// Legacy ledger-only entry point: serial execution. The seed-to-sample
/// mapping differs from pre-ExecutionContext builds (see batched.h).
[[nodiscard]] SampleResult sample_small_dpp_bernoulli(
    const Matrix& kernel, RandomStream& rng, PramLedger* ledger = nullptr,
    const FilteringOptions& options = {});

}  // namespace pardpp
