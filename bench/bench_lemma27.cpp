// EXP-L27 — Lemma 27: the acceptance-ratio bound for negatively
// correlated distributions.
//
// For strongly Rayleigh mu on ([n] choose k) and batches of size t:
//   mu_t(T) / (t! prod_{i in T} p_i / k) <= exp(t^2 / k).
// We measure the exhaustive maximum of the left-hand side over all batches
// on random symmetric k-DPPs and report it against the bound, plus the
// implied per-proposal acceptance probability exp(-t^2/k) the machine
// bound of Theorem 10 is built on.
#include <cmath>

#include "bench_util.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

double max_log_ratio(const SymmetricKdppOracle& oracle, std::size_t t) {
  const auto n = static_cast<int>(oracle.ground_size());
  const auto k = oracle.sample_size();
  const auto p = oracle.marginals();
  double log_falling = 0.0;
  for (std::size_t r = 0; r < t; ++r)
    log_falling += std::log(static_cast<double>(k - r));
  double best = kNegInf;
  for_each_subset(n, static_cast<int>(t), [&](std::span<const int> batch) {
    const double joint = oracle.log_joint_marginal(batch);
    if (joint == kNegInf) return;
    double log_proposal = 0.0;
    for (const int i : batch)
      log_proposal += std::log(p[static_cast<std::size_t>(i)] /
                               static_cast<double>(k));
    best = std::max(best, joint - log_falling - log_proposal);
  });
  return best;
}

}  // namespace

int main() {
  print_header("EXP-L27", "Lemma 27 (acceptance ratio bound)",
               "max over batches T of mu_t(T)/(t! prod p_i/k) <= exp(t^2/k) "
               "for symmetric k-DPPs; measured exhaustively");
  Table table({"kernel", "n", "k", "t", "max_log_ratio", "bound_t^2/k",
               "slack", "min_accept=exp(-t^2/k)"});
  RandomStream rng(91001);
  struct Config {
    const char* name;
    std::size_t n;
    std::size_t k;
  };
  const Config configs[] = {
      {"wishart", 12, 4}, {"wishart", 12, 6}, {"wishart", 14, 9},
      {"rbf", 12, 4},     {"rbf", 14, 6},     {"lowrank", 12, 6},
  };
  for (const auto& config : configs) {
    Matrix l;
    if (std::string(config.name) == "wishart") {
      l = random_psd(config.n, config.n, rng, 1e-4);
    } else if (std::string(config.name) == "rbf") {
      l = rbf_kernel(random_points(config.n, 2, rng), 0.3);
      for (std::size_t i = 0; i < config.n; ++i) l(i, i) += 1e-6;
    } else {
      l = random_psd(config.n, config.k + 2, rng, 1e-5);
    }
    const SymmetricKdppOracle oracle(l, config.k, /*validate=*/false);
    const auto t = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(config.k))));
    const double measured = max_log_ratio(oracle, t);
    const double bound = static_cast<double>(t * t) /
                         static_cast<double>(config.k);
    table.add_row({config.name, fmt_int(config.n), fmt_int(config.k),
                   fmt_int(t), fmt(measured, 4), fmt(bound, 4),
                   fmt(bound - measured, 4), fmt(std::exp(-bound), 4)});
  }
  table.print();
  std::printf(
      "\nAll slacks must be >= 0: the bound holds uniformly, so the exact\n"
      "sampler of Theorem 10 never sees a capped ratio above 1.\n");
  return 0;
}
