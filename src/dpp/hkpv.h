// HKPV spectral sampler (Hough–Krishnapur–Peres–Virág) for symmetric DPPs.
//
// The classical *sequential* exact sampler: eigendecompose L, select an
// elementary DPP (each eigenvector independently with probability
// lambda/(1+lambda) for the unconstrained DPP; a k-subset weighted by
// products of eigenvalues for the k-DPP), then draw points one at a time
// while projecting the selected eigenvectors. Depth Theta(k) — this is the
// baseline the paper's parallel samplers are measured against, and the
// test suite's ground-truth sampler.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "support/random.h"

namespace pardpp {

/// Exact sample from the unconstrained symmetric DPP with ensemble L.
[[nodiscard]] std::vector<int> hkpv_sample_dpp(const Matrix& l,
                                               RandomStream& rng);

/// Exact sample from the symmetric k-DPP with ensemble L.
[[nodiscard]] std::vector<int> hkpv_sample_kdpp(const Matrix& l,
                                                std::size_t k,
                                                RandomStream& rng);

}  // namespace pardpp
