// Deterministic, splittable random streams.
//
// Every sampler in pardpp draws randomness from an explicit `RandomStream`
// so that (a) experiments are reproducible from a single seed, and (b)
// parallel branches (rejection-sampling proposal batches, planar-separator
// component recursions) can be given statistically independent streams via
// `split()` without any shared mutable state between threads (Core
// Guidelines CP.2/CP.3: no data races, minimal sharing).
//
// The generator is xoshiro256++ seeded through splitmix64, the combination
// recommended by its authors for exactly this splitting pattern.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.h"

namespace pardpp {

namespace detail {
/// splitmix64 step: used for seeding and stream splitting.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256++ pseudo-random stream with explicit seeding and splitting.
class RandomStream {
 public:
  using result_type = std::uint64_t;

  /// Constructs a stream from a 64-bit seed (expanded via splitmix64).
  explicit RandomStream(std::uint64_t seed = 0x1234567890abcdefULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = detail::splitmix64(sm);
  }

  /// Returns the next 64 uniformly random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t bound) noexcept {
    // Unbiased multiply-shift; the rejection loop terminates almost surely.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via the Marsaglia polar method.
  [[nodiscard]] double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * scale;
    have_spare_ = true;
    return u * scale;
  }

  /// Samples an index with probability proportional to `weights`
  /// (nonnegative, not all zero).
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) {
    double total = 0.0;
    for (const double w : weights) {
      check_arg(w >= 0.0, "categorical: negative weight");
      total += w;
    }
    check_arg(total > 0.0, "categorical: all weights zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives a statistically independent child stream. Mutates this stream
  /// (consumes one draw) so repeated splits yield distinct children.
  [[nodiscard]] RandomStream split() noexcept {
    return RandomStream(next_u64() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pardpp
