// EXP-CAP — ablation: exact vs approximate rejection (Algorithm 2 vs 3).
//
// The paper's §1.2 observation: exact batching of nonsymmetric DPPs needs
// the acceptance cap scaled by ~2^l, killing parallelism; Algorithm 3
// instead caps the ratio and pays total variation equal to the target
// mass outside Omega. This bench measures that trade-off end to end on a
// small nonsymmetric k-DPP where the exact distribution is enumerable:
// sweeping the cap slack shows TV falling toward zero as acceptance
// falls — the Prop. 26 dial.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/general_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "sampling/entropic.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-CAP", "Algorithm 2 vs 3 (cap slack ablation)",
               "as the ratio cap grows, Omega captures more target mass: "
               "TV error falls, per-proposal acceptance falls ~exp(-cap); "
               "exact batching (cap = true max ratio) is the limit");
  RandomStream rng(99501);
  const std::size_t n = 8;
  const std::size_t k = 4;
  const Matrix l = random_npsd(n, rng, 0.8);
  const GeneralDppOracle oracle(l, k, /*validate=*/false);

  // Exact distribution for TV measurement.
  const SubsetIndexer indexer(static_cast<int>(n), static_cast<int>(k));
  std::vector<double> exact(indexer.count(), 0.0);
  {
    std::vector<double> log_mass(indexer.count(), kNegInf);
    for_each_subset(static_cast<int>(n), static_cast<int>(k),
                    [&](std::span<const int> s) {
                      const auto sld = signed_log_det(l.principal(s));
                      if (sld.sign > 0)
                        log_mass[indexer.rank(s)] = sld.log_abs;
                    });
    const double log_z = logsumexp(log_mass);
    for (std::size_t i = 0; i < exact.size(); ++i)
      exact[i] = std::exp(log_mass[i] - log_z);
  }

  Table table({"log_cap", "TV(measured)", "acceptance", "overflow_frac",
               "proposals/sample"});
  const int trials = 15000;
  for (const double cap : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    EntropicOptions options;
    options.log_ratio_cap = cap;
    options.max_batch = 2;  // fixed batch to isolate the cap effect
    options.machine_cap = 1u << 16;
    std::vector<double> counts(indexer.count(), 0.0);
    std::size_t proposals = 0;
    std::size_t accepted = 0;
    std::size_t overflow = 0;
    int completed = 0;
    for (int t = 0; t < trials; ++t) {
      try {
        RandomStream run = rng.split();
        const auto result = sample_entropic(oracle, run, nullptr, options);
        counts[indexer.rank(result.items)] += 1.0;
        proposals += result.diag.proposals;
        accepted += result.diag.accepted_batches;
        overflow += result.diag.ratio_overflows;
        ++completed;
      } catch (const SamplingFailure&) {
        // tiny caps can exhaust the budget; skip the trial
      }
    }
    double tv = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i)
      tv += std::abs(counts[i] / std::max(completed, 1) - exact[i]);
    table.add_row(
        {fmt(cap, 2), fmt(0.5 * tv, 4),
         fmt(static_cast<double>(accepted) /
                 std::max<std::size_t>(proposals, 1),
             4),
         fmt(static_cast<double>(overflow) /
                 std::max<std::size_t>(proposals, 1),
             4),
         fmt(static_cast<double>(proposals) / std::max(completed, 1), 1)});
  }
  table.print();
  std::printf(
      "\nTV includes ~%.3f of Monte-Carlo noise floor (%d trials over %zu\n"
      "outcomes); the signal is the overflow fraction -> 0 and TV settling\n"
      "at the noise floor once the cap covers the true max ratio —\n"
      "Algorithm 3 becomes Algorithm 2.\n",
      std::sqrt(static_cast<double>(indexer.count()) /
                (2.0 * 3.14159 * trials)),
      trials, indexer.count());
  return 0;
}
