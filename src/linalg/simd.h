// Runtime-dispatched SIMD microkernels for the dense linalg substrate
// (DESIGN.md §2 convention 10).
//
// Every Õ(1)-depth PRAM round the samplers charge bottoms out in a handful
// of dense primitives — blocked GEMM/SYRK in matrix.h, bordered-Cholesky
// dot products in cholesky.h, Schur half-solves in schur.cpp, the scaled
// Gram rebuilds of the distillation front end — and their constant factor,
// not their asymptotics, sets practical throughput. This layer provides
// those primitives as microkernels with two arms:
//
//  * a portable scalar arm (4-way unrolled, fixed blocked order), always
//    compiled;
//  * an AVX2+FMA arm, compiled only in linalg/simd_avx2.cpp (the single TU
//    carrying ISA flags, so the rest of the build stays portable) and
//    eligible only when the CPU reports avx2+fma at runtime.
//
// Dispatch is latched once, on first kernel use: the `PARDPP_SIMD`
// environment variable ("scalar", "avx2", "auto"/unset) picks the arm,
// defaulting to the best supported one. `ScopedPathOverride` is the
// in-process option form of the same switch, for the fuzz tests and the
// scalar-vs-SIMD micro benches that must exercise both arms in one run;
// it is not for production code paths.
//
// Determinism contract: each arm's reductions use a *fixed blocked
// summation order* — a pure function of (arm, n) only, never of the pool
// size or thread count — so identical seed ⇒ identical sample continues
// to hold at every pool size within a build. The two arms agree to 1e-10
// relative (enforced by tests/test_simd.cpp fuzz across shapes,
// alignments, and ragged tails), not bitwise: whichever arm dispatch
// selects, *all* callers use it, so bit-identity contracts between code
// paths (IncrementalCholesky vs cholesky(), commit vs condition()) are
// path-internal and unaffected.
#pragma once

#include <cstddef>

namespace pardpp::simd {

enum class Path { kScalar = 0, kAvx2 = 1 };

/// True when the AVX2 arm was compiled into this binary (x86-64 and the
/// compiler accepted -mavx2 -mfma).
[[nodiscard]] bool avx2_compiled() noexcept;

/// True when the running CPU reports avx2 and fma.
[[nodiscard]] bool avx2_supported() noexcept;

/// Pure resolution of an override string to a usable path: "scalar"
/// forces the portable arm; "avx2" selects the AVX2 arm when compiled and
/// supported (falling back to scalar otherwise — never an illegal
/// instruction); anything else (including null/"auto") picks the best
/// supported arm. Exposed so the env contract is unit-testable without
/// relaunching the process.
[[nodiscard]] Path resolve_path(const char* override_value) noexcept;

/// The arm in effect: latched from getenv("PARDPP_SIMD") via
/// resolve_path() on first kernel use, unless a ScopedPathOverride is
/// active.
[[nodiscard]] Path active_path() noexcept;

/// "avx2" or "scalar" — the provenance string bench_util.h stamps into
/// every BENCH record (compare_bench.py treats it as a host field:
/// cross-path wall-clock comparisons are advisory, like cross-host ones).
[[nodiscard]] const char* path_name() noexcept;

// ---------------------------------------------------------------------
// Dispatched microkernels. Pointers need not be aligned (the AVX2 arm
// uses unaligned loads, which are penalty-free on 64-byte-aligned data —
// Matrix storage is 64-byte aligned so the hot rows qualify); sizes may
// be ragged (scalar tails are handled in a fixed order).
// ---------------------------------------------------------------------

/// sum_i a[i] * b[i].
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// Four dot products sharing the `a` operand: out[r] = sum_i a[i]*br[i].
/// The GEMM inner kernel — one load of `a` feeds four accumulator chains.
void dot4(const double* a, const double* b0, const double* b1,
          const double* b2, const double* b3, std::size_t n,
          double* out) noexcept;

/// y[i] += alpha * x[i]. `y` and `x` must not partially overlap.
void axpy(double* y, double alpha, const double* x, std::size_t n) noexcept;

/// dst[i] = s * src[i]. Exact aliasing (dst == src, the in-place scale)
/// is allowed; partial overlap is not.
void scaled_copy(double* dst, double s, const double* src,
                 std::size_t n) noexcept;

// ---------------------------------------------------------------------
// Coarse-grained kernels. The feature widths the samplers run (d = 24
// Gram blocks, n = 128 Schur ensembles) make the *rows* short, so
// dispatching per inner product would spend more on the indirect call
// than the vectors win back. These two carry the entire blocked loop
// nest (simd_block.inl, shared verbatim by both arms) behind a single
// dispatch, letting each arm inline its primitives.
// ---------------------------------------------------------------------

/// C = A B^T: C is m x n with row stride ldc, A is m rows of length k
/// (stride lda), B is n rows of length k (stride ldb). Every inner
/// product walks contiguous memory; summation order matches dot/dot4.
void gemm_nt(double* c, std::size_t ldc, const double* a, std::size_t lda,
             std::size_t m, const double* b, std::size_t ldb, std::size_t n,
             std::size_t k) noexcept;

/// Upper triangle of C += alpha * A^T A: C is n x n with row stride ldc,
/// A is r rows of length n with row stride `stride`. The caller mirrors
/// the triangle. Rows are consumed in fixed blocks (four fused per pass),
/// independent of pool size.
void syrk_ut(double* c, std::size_t ldc, double alpha, const double* a,
             std::size_t r, std::size_t n, std::size_t stride) noexcept;

/// Function-pointer table of one arm's kernels. The dispatched entry
/// points above read the latched table; tests and benches can fetch a
/// specific arm's table to drive both implementations side by side.
struct KernelTable {
  double (*dot)(const double*, const double*, std::size_t) noexcept;
  void (*dot4)(const double*, const double*, const double*, const double*,
               const double*, std::size_t, double*) noexcept;
  void (*axpy)(double*, double, const double*, std::size_t) noexcept;
  void (*scaled_copy)(double*, double, const double*, std::size_t) noexcept;
  void (*gemm_nt)(double*, std::size_t, const double*, std::size_t,
                  std::size_t, const double*, std::size_t, std::size_t,
                  std::size_t) noexcept;
  void (*syrk_ut)(double*, std::size_t, double, const double*, std::size_t,
                  std::size_t, std::size_t) noexcept;
  Path path;
};

/// The table for one arm. Requesting kAvx2 when it is not compiled or
/// not supported returns the scalar table (mirroring resolve_path).
[[nodiscard]] const KernelTable& kernel_table(Path path) noexcept;

/// The latched (or overridden) table behind the dispatched entry points.
[[nodiscard]] const KernelTable& active_kernels() noexcept;

/// RAII arm override for tests and micro benches: forces `path` (subject
/// to availability) for its lifetime, restoring the previous state on
/// destruction. Not thread-safe — install only while no other thread is
/// inside the linalg substrate. Production code must rely on the
/// PARDPP_SIMD environment contract instead.
class ScopedPathOverride {
 public:
  explicit ScopedPathOverride(Path path) noexcept;
  ~ScopedPathOverride();
  ScopedPathOverride(const ScopedPathOverride&) = delete;
  ScopedPathOverride& operator=(const ScopedPathOverride&) = delete;

 private:
  const KernelTable* previous_;
};

namespace detail {
// The scalar arm, directly callable for the fuzz tests (the AVX2 arm is
// reached through kernel_table(Path::kAvx2), so binaries without it still
// link).
[[nodiscard]] double dot_scalar(const double* a, const double* b,
                                std::size_t n) noexcept;
void dot4_scalar(const double* a, const double* b0, const double* b1,
                 const double* b2, const double* b3, std::size_t n,
                 double* out) noexcept;
void axpy_scalar(double* y, double alpha, const double* x,
                 std::size_t n) noexcept;
void scaled_copy_scalar(double* dst, double s, const double* src,
                        std::size_t n) noexcept;
void gemm_nt_scalar(double* c, std::size_t ldc, const double* a,
                    std::size_t lda, std::size_t m, const double* b,
                    std::size_t ldb, std::size_t n, std::size_t k) noexcept;
void syrk_ut_scalar(double* c, std::size_t ldc, double alpha, const double* a,
                    std::size_t r, std::size_t n, std::size_t stride) noexcept;
}  // namespace detail

}  // namespace pardpp::simd
