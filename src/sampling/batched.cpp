#include "sampling/batched.h"

#include <algorithm>
#include <cmath>

#include "support/combinatorics.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace detail {

namespace {

// One speculative proposal trial: everything machine m computes before the
// oracle round, plus its private stream for the accept draw afterwards.
struct ProposalTrial {
  RandomStream stream{0};
  std::vector<int> batch;
  double log_proposal = 0.0;
  bool duplicate = false;
  double log_joint = kNegInf;
};

}  // namespace

std::optional<AcceptedBatch> run_batch_round(
    const CountingOracle& mu, std::span<const double> marginals,
    const BatchRound& config, RandomStream& rng, const ExecutionContext& ctx,
    SampleDiagnostics& diag) {
  const std::size_t k = mu.sample_size();
  const std::size_t t = config.batch;
  check_arg(t >= 1 && t <= k, "run_batch_round: invalid batch size");
  // log of k (k-1) ... (k-t+1) = log(C(k,t) t!).
  double log_falling = 0.0;
  for (std::size_t r = 0; r < t; ++r)
    log_falling += std::log(static_cast<double>(k - r));
  const double log_k = std::log(static_cast<double>(k));

  const std::vector<double> weights(marginals.begin(), marginals.end());
  std::vector<std::span<const int>> queries;  // views into trial batches
  std::vector<std::size_t> query_owner;
  std::vector<double> answers;
  std::optional<AcceptedBatch> accepted;
  run_trial_waves<ProposalTrial>(
      ctx, config.machines, rng,
      // Evaluate: machine m draws its t i.i.d. picks from p / k on its
      // private stream, concurrently with the rest of the wave.
      [&](ProposalTrial& trial, RandomStream stream) {
        trial.stream = stream;
        trial.batch.resize(t);
        for (std::size_t r = 0; r < t; ++r) {
          const auto pick =
              static_cast<int>(trial.stream.categorical(weights));
          trial.batch[r] = pick;
          trial.log_proposal +=
              std::log(weights[static_cast<std::size_t>(pick)]) - log_k;
          for (std::size_t prev = 0; prev < r && !trial.duplicate; ++prev)
            trial.duplicate = trial.batch[prev] == pick;
        }
      },
      // Barrier: the wave's counting queries, issued to the oracle as one
      // batch round (duplicate proposals have target mass zero and are
      // never queried).
      [&](std::span<ProposalTrial> wave) {
        queries.clear();
        query_owner.clear();
        for (std::size_t w = 0; w < wave.size(); ++w) {
          if (wave[w].duplicate) continue;
          queries.emplace_back(wave[w].batch);
          query_owner.push_back(w);
        }
        answers.assign(queries.size(), kNegInf);
        if (queries.empty()) return;
        ++diag.wave_count;
        diag.wave_queries += queries.size();
        mu.query_many(queries, answers, ctx);
        for (std::size_t q = 0; q < queries.size(); ++q)
          wave[query_owner[q]].log_joint = answers[q];
      },
      // Fold: accept/reject in machine order. Counters cover scanned
      // trials only, so diagnostics are identical at every pool size.
      [&](ProposalTrial& trial) {
        ++diag.proposals;
        if (trial.duplicate) {
          // Two copies of one element: target mass zero, certain
          // rejection (no counting query was issued).
          ++diag.duplicate_rejects;
          return false;
        }
        ++diag.oracle_calls;
        if (trial.log_joint == kNegInf) {
          ++diag.duplicate_rejects;
          return false;
        }
        const double log_ratio =
            trial.log_joint - log_falling - trial.log_proposal;
        if (log_ratio > config.log_cap + 1e-9) {
          // Outside Omega (Algorithm 3); for Lemma 27-compliant targets
          // this is a numerical impossibility and the tests assert it
          // stays zero.
          ++diag.ratio_overflows;
          return false;
        }
        if (trial.stream.bernoulli(std::exp(log_ratio - config.log_cap))) {
          ++diag.accepted_batches;
          accepted = AcceptedBatch{std::move(trial.batch), trial.log_joint};
          return true;
        }
        return false;
      },
      // The evaluate bodies are a handful of categorical draws; the
      // wave's heavy work is the barrier's batched oracle round, so
      // never pay a per-trial dispatch for them.
      /*evaluate_grain=*/16);
  return accepted;
}

}  // namespace detail

SampleResult sample_batched_on(CommittedOracle& state, RandomStream& rng,
                               const ExecutionContext& ctx,
                               const BatchedOptions& options) {
  check_arg(state.committed_count() == 0,
            "sample_batched_on: state not at its base distribution");
  SampleResult result;
  IndexTracker tracker(state.ground_size());
  const double round_bound =
      2.0 * std::sqrt(static_cast<double>(state.sample_size())) + 2.0;
  const double delta_round =
      std::max(options.failure_prob / round_bound, 1e-12);

  while (state.sample_size() > 0) {
    const std::size_t k = state.sample_size();
    const std::size_t m = state.ground_size();
    std::size_t t = options.max_batch == 0
                        ? static_cast<std::size_t>(
                              std::ceil(std::sqrt(static_cast<double>(k))))
                        : options.max_batch;
    t = std::min(t, k);

    // One parallel round of counting queries: all marginals.
    const std::vector<double> p = state.marginals();
    ctx.charge(m, m);
    result.diag.oracle_calls += m;

    detail::BatchRound config;
    config.batch = t;
    config.log_cap = static_cast<double>(t) * static_cast<double>(t) /
                         static_cast<double>(k) +
                     options.extra_log_cap;
    // Prop. 25: C log(1/delta') machines boost acceptance to 1 - delta'.
    const double machines_needed =
        std::exp(config.log_cap) * std::log(1.0 / delta_round) * 2.0 + 8.0;
    config.machines = static_cast<std::size_t>(std::min(
        machines_needed, static_cast<double>(options.machine_cap)));

    auto accepted =
        detail::run_batch_round(state, p, config, rng, ctx, result.diag);
    // The proposal batch runs as one parallel round of `machines`
    // rejection evaluations (one counting query each).
    ctx.charge(config.machines, config.machines);
    result.diag.rounds += 1;
    if (!accepted.has_value()) {
      throw SamplingFailure(
          "sample_batched: no proposal accepted within the machine budget "
          "(round failure probability exceeded)");
    }
    for (const int b : accepted->batch)
      result.items.push_back(tracker.original(b));
    state.commit(accepted->batch, accepted->log_joint);
    tracker.remove(std::move(accepted->batch));
  }
  std::sort(result.items.begin(), result.items.end());
  if (ctx.ledger() != nullptr) result.diag.pram = ctx.ledger()->stats();
  return result;
}

SampleResult sample_batched(const CountingOracle& mu, RandomStream& rng,
                            const ExecutionContext& ctx,
                            const BatchedOptions& options) {
  const auto state = mu.make_committed();
  return sample_batched_on(*state, rng, ctx, options);
}

SampleResult sample_batched(const CountingOracle& mu, RandomStream& rng,
                            PramLedger* ledger,
                            const BatchedOptions& options) {
  return sample_batched(mu, rng, ExecutionContext::serial(ledger), options);
}

}  // namespace pardpp
