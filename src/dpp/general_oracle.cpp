#include "dpp/general_oracle.h"

#include <numeric>

#include "dpp/ensemble.h"
#include "linalg/schur.h"
#include "support/logsum.h"

namespace pardpp {

GeneralDppOracle::GeneralDppOracle(Matrix l, std::size_t k, bool validate)
    : GeneralDppOracle(std::move(l), {}, {static_cast<int>(k)}, validate) {}

GeneralDppOracle::GeneralDppOracle(Matrix l, std::vector<int> part_of,
                                   std::vector<int> counts, bool validate)
    : l_(std::move(l)), part_of_(std::move(part_of)), counts_(std::move(counts)) {
  check_arg(l_.square(), "GeneralDppOracle: matrix not square");
  if (part_of_.empty()) part_of_.assign(l_.rows(), 0);
  check_arg(part_of_.size() == l_.rows(),
            "GeneralDppOracle: partition label size mismatch");
  check_arg(!counts_.empty(), "GeneralDppOracle: empty count vector");
  k_ = 0;
  for (const int c : counts_) {
    check_arg(c >= 0, "GeneralDppOracle: negative count");
    k_ += static_cast<std::size_t>(c);
  }
  check_arg(k_ <= l_.rows(), "GeneralDppOracle: total count exceeds ground");
  std::vector<std::size_t> part_sizes(counts_.size(), 0);
  for (const int p : part_of_) {
    check_arg(p >= 0 && static_cast<std::size_t>(p) < counts_.size(),
              "GeneralDppOracle: partition label out of range");
    ++part_sizes[static_cast<std::size_t>(p)];
  }
  for (std::size_t a = 0; a < counts_.size(); ++a) {
    check_arg(static_cast<std::size_t>(counts_[a]) <= part_sizes[a],
              "GeneralDppOracle: infeasible partition constraint "
              "(count exceeds part size)");
  }
  if (validate) validate_ensemble(l_, /*symmetric=*/false);
}

const CharPolyEngine& GeneralDppOracle::engine() const {
  if (!engine_.has_value()) {
    engine_ =
        CharPolyEngine(l_, part_of_, counts_.size(), counts_);
  }
  return *engine_;
}

LogCoefficient GeneralDppOracle::partition_coefficient() const {
  if (!partition_.has_value()) partition_ = engine().log_count(counts_);
  return *partition_;
}

double GeneralDppOracle::log_partition() const {
  const auto z = partition_coefficient();
  check_numeric(z.sign > 0,
                "GeneralDppOracle: partition function not positive "
                "(infeasible constraints or degenerate ensemble)");
  return z.log_abs;
}

std::vector<int> GeneralDppOracle::batch_part_counts(
    std::span<const int> t) const {
  std::vector<int> tc(counts_.size(), 0);
  for (const int i : t) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < ground_size(),
              "GeneralDppOracle: index out of range");
    ++tc[static_cast<std::size_t>(part_of_[static_cast<std::size_t>(i)])];
  }
  return tc;
}

double GeneralDppOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  if (t.empty()) return 0.0;
  const auto tc = batch_part_counts(t);
  std::vector<int> remaining(counts_.size());
  for (std::size_t a = 0; a < counts_.size(); ++a) {
    remaining[a] = counts_[a] - tc[a];
    if (remaining[a] < 0) return kNegInf;  // violates a partition budget
  }
  const auto numerator = engine().log_count_superset(t, remaining);
  if (numerator.sign <= 0) return kNegInf;
  return numerator.log_abs - log_partition();
}

std::vector<double> GeneralDppOracle::marginals() const {
  const std::size_t n = ground_size();
  std::vector<double> p(n, 0.0);
  if (k_ == 0) return p;
  const double log_z = log_partition();
  const auto numerators = engine().marginal_numerators();
  for (std::size_t i = 0; i < n; ++i) {
    if (numerators[i].sign <= 0) continue;
    p[i] = std::min(std::exp(numerators[i].log_abs - log_z), 1.0);
  }
  return p;
}

// Wave-scoped query evaluator: the heavy shared factor is the engine's
// node cache (primed by prepare_concurrent) plus the cached partition
// coefficient; per query only the t x t node solves remain, with the
// part-count bookkeeping on reused scratch.
class GeneralDppOracle::State final : public ConditionalState {
 public:
  explicit State(const GeneralDppOracle& oracle) : o_(oracle) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    if (t.size() > o_.k_) return kNegInf;
    if (t.empty()) return 0.0;
    const std::size_t parts = o_.counts_.size();
    remaining_.assign(parts, 0);
    for (const int i : t) {
      check_arg(i >= 0 && static_cast<std::size_t>(i) < o_.ground_size(),
                "log_joint: index out of range");
      ++remaining_[static_cast<std::size_t>(
          o_.part_of_[static_cast<std::size_t>(i)])];
    }
    for (std::size_t a = 0; a < parts; ++a) {
      remaining_[a] = o_.counts_[a] - remaining_[a];
      if (remaining_[a] < 0) return kNegInf;  // violates a partition budget
    }
    const auto numerator = o_.engine().log_count_superset(t, remaining_);
    if (numerator.sign <= 0) return kNegInf;
    return numerator.log_abs - o_.log_partition();
  }

 private:
  const GeneralDppOracle& o_;
  std::vector<int> remaining_;
};

std::unique_ptr<ConditionalState> GeneralDppOracle::make_conditional_state()
    const {
  return std::make_unique<State>(*this);
}

// ---- the commit path (DESIGN.md §2 convention 7) ----
//
// The charpoly family's per-round preprocessing is the engine node cache
// (inherently rebuilt when the ensemble changes) plus the partition
// coefficient's full grid sweep. The commit path removes the latter: the
// chain rule det(L_{T ∪ F}) = det(L_TT) det((L^T)_F) gives
//   Z' = P[batch ⊆ S] * Z / det(L_batch,batch),
// so the conditioned oracle's partition coefficient is seeded from the
// accepted trial's already-computed counting answer and the Schur
// elimination determinant instead of a fresh sweep.
class GeneralDppOracle::Committed final : public CommittedOracle {
 public:
  explicit Committed(const GeneralDppOracle& base) : base_(&base) {}

  void commit(std::span<const int> batch, double log_joint) override {
    const std::size_t tsize = batch.size();
    if (tsize == 0) return;
    const GeneralDppOracle& c = cur();
    check_arg(tsize <= c.k_, "commit: |batch| exceeds k");
    const auto tc = c.batch_part_counts(batch);
    std::vector<int> new_counts(c.counts_.size());
    for (std::size_t a = 0; a < c.counts_.size(); ++a) {
      new_counts[a] = c.counts_[a] - tc[a];
      check_arg(new_counts[a] >= 0,
                "commit: batch violates a partition budget");
    }
    // Capture the current partition before the matrix changes; only seed
    // the next conditional when every ingredient is cleanly available.
    const LogCoefficient z = c.partition_coefficient();
    const auto result = condition_ensemble(c.l_, batch, /*symmetric=*/false);
    const auto keep = complement_indices(c.l_.rows(), batch);
    std::vector<int> new_parts;
    new_parts.reserve(keep.size());
    for (const int i : keep)
      new_parts.push_back(c.part_of_[static_cast<std::size_t>(i)]);
    auto next = std::make_unique<GeneralDppOracle>(
        result.reduced, std::move(new_parts), std::move(new_counts),
        /*validate=*/false);
    if (!std::isnan(log_joint) && log_joint != kNegInf && z.sign > 0 &&
        result.det_sign_elim > 0) {
      next->partition_ = LogCoefficient{
          log_joint + z.log_abs - result.log_abs_det_elim, 1};
    }
    current_ = std::move(next);
    committed_ += tsize;
  }

  void reset() override {
    current_.reset();
    committed_ = 0;
  }
  [[nodiscard]] std::size_t committed_count() const override {
    return committed_;
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return cur().ground_size();
  }
  [[nodiscard]] std::size_t sample_size() const override {
    return cur().sample_size();
  }
  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    return cur().log_joint_marginal(t);
  }
  [[nodiscard]] std::vector<double> marginals() const override {
    return cur().marginals();
  }
  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override {
    return cur().draw_marginal(rng);
  }
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    return cur().condition(t);
  }
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    return cur().clone();
  }
  [[nodiscard]] std::string name() const override { return cur().name(); }
  void prepare_concurrent() const override { cur().prepare_concurrent(); }
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override {
    return cur().make_conditional_state();
  }

 private:
  [[nodiscard]] const GeneralDppOracle& cur() const {
    return current_ != nullptr ? *current_ : *base_;
  }

  const GeneralDppOracle* base_;
  std::unique_ptr<GeneralDppOracle> current_;
  std::size_t committed_ = 0;
};

std::unique_ptr<CommittedOracle> GeneralDppOracle::make_committed() const {
  return std::make_unique<Committed>(*this);
}

std::unique_ptr<CountingOracle> GeneralDppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  const auto tc = batch_part_counts(t);
  std::vector<int> new_counts(counts_.size());
  for (std::size_t a = 0; a < counts_.size(); ++a) {
    new_counts[a] = counts_[a] - tc[a];
    check_arg(new_counts[a] >= 0,
              "condition: batch violates a partition budget");
  }
  const auto result = condition_ensemble(l_, t, /*symmetric=*/false);
  const auto keep = complement_indices(l_.rows(), t);
  std::vector<int> new_parts;
  new_parts.reserve(keep.size());
  for (const int i : keep)
    new_parts.push_back(part_of_[static_cast<std::size_t>(i)]);
  return std::make_unique<GeneralDppOracle>(result.reduced,
                                            std::move(new_parts),
                                            std::move(new_counts),
                                            /*validate=*/false);
}

std::unique_ptr<CountingOracle> GeneralDppOracle::clone() const {
  auto copy = std::make_unique<GeneralDppOracle>(l_, part_of_, counts_,
                                                 /*validate=*/false);
  return copy;
}

void GeneralDppOracle::prepare_concurrent() const {
  engine().warm();
  (void)partition_coefficient();
}

}  // namespace pardpp
