// EXP-LS — intermediate-sampling front end at million-item ground sets.
//
// The full-n session path pays the base spectral preprocessing on the
// whole ground set (O(n d²) and n-sized caches per session, O(n d) per
// round), which caps practical n at a few thousand-to-hundred-thousand.
// The distillation front end (DESIGN.md §2 convention 8) pays one O(n d)
// diagonal pass at prime time and then serves draws whose cost is
// independent of n — so an n = 10^6 low-rank ensemble is served in
// milliseconds per draw on this container, while the full-n path's
// per-draw cost is reported by extrapolation and marked estimated.
//
// Contract checks folded into the measurement: distilled samples are
// bit-identical at every pool size and against the condition() reference
// from one seed, and at enumeration scale the distilled output law
// passes a chi-square test against exhaustive enumeration.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "dpp/feature_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/session.h"
#include "support/combinatorics.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

std::vector<std::vector<int>> items_of(std::vector<SampleResult> results) {
  std::vector<std::vector<int>> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(r.items));
  return out;
}

// Pearson chi-square of distilled samples against enumeration (cells
// with expected count < 5 pooled, mirroring tests/test_util.h), plus the
// pool-size / reference bit-identity sweep. Returns regression = law or
// identity failure.
bool exactness_block(JsonSeries& json) {
  const std::size_t n = 12;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const std::size_t trials = 3000;
  RandomStream setup(901001);
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);

  SessionOptions options;
  options.distill.enabled = true;
  SessionOptions reference_options = options;
  reference_options.use_commit = false;
  SamplerSession session(oracle, options);
  SamplerSession reference_session(oracle, reference_options);

  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(901002);
    per_pool.push_back(items_of(session.draw_many(trials, rng, ctx)));
  }
  bool identical = per_pool[1] == per_pool[0] && per_pool[2] == per_pool[0];
  RandomStream reference_rng(901002);
  identical = identical &&
              items_of(reference_session.draw_many(
                  trials, reference_rng, ExecutionContext::serial())) ==
                  per_pool[0];

  // Exact probabilities by enumeration; chi-square with sparse cells
  // pooled at expected < 5.
  const SubsetIndexer indexer(static_cast<int>(n), static_cast<int>(k));
  std::vector<double> log_masses(indexer.count());
  std::vector<double> counts(indexer.count(), 0.0);
  for_each_subset(static_cast<int>(n), static_cast<int>(k),
                  [&](std::span<const int> s) {
                    log_masses[indexer.rank(s)] =
                        signed_log_det(l.principal(s)).log_abs;
                  });
  double log_z = kNegInf;
  for (const double lm : log_masses) log_z = log_add(log_z, lm);
  for (const auto& s : per_pool[0]) counts[indexer.rank(s)] += 1.0;
  double statistic = 0.0;
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < log_masses.size(); ++i) {
    const double expected =
        std::exp(log_masses[i] - log_z) * static_cast<double>(trials);
    if (expected < 5.0) {
      pooled_expected += expected;
      pooled_observed += counts[i];
      continue;
    }
    const double diff = counts[i] - expected;
    statistic += diff * diff / expected;
    ++cells;
  }
  if (pooled_expected > 0.0 || pooled_observed > 0.0) {
    const double diff = pooled_observed - pooled_expected;
    statistic += diff * diff / std::max(pooled_expected, 1.0);
    ++cells;
  }
  const double dof = cells > 1 ? static_cast<double>(cells - 1) : 1.0;
  // Wilson–Hilferty upper quantile at z = 4 (~3e-5 false-alarm rate).
  const double h = 2.0 / (9.0 * dof);
  const double cube = 1.0 - h + 4.0 * std::sqrt(h);
  const double threshold = dof * cube * cube * cube;
  const bool law_ok = statistic < threshold;

  Table table({"n", "d", "k", "trials", "chi2", "dof", "threshold",
               "law_ok", "identical"});
  table.add_row({fmt_int(n), fmt_int(d), fmt_int(k), fmt_int(trials),
                 fmt(statistic, 1), fmt(dof, 0), fmt(threshold, 1),
                 law_ok ? "yes" : "NO", identical ? "yes" : "NO"});
  table.print();
  json.add_record(
      {JsonSeries::text("experiment", "largescale_exactness"),
       JsonSeries::number("n", n), JsonSeries::number("d", d),
       JsonSeries::number("k", k), JsonSeries::number("trials", trials),
       JsonSeries::number("chi_square", statistic, 2),
       JsonSeries::number("dof", dof, 0),
       JsonSeries::text("identical", identical ? "yes" : "no"),
       JsonSeries::boolean("regression", !law_ok || !identical)});
  return !law_ok || !identical;
}

struct ScalePoint {
  std::size_t n = 0;
  double prime_ms = 0.0;
  double draw_ms = 0.0;
  double accept_rate = 1.0;
  double full_prime_ms = 0.0;
  double full_draw_ms = 0.0;
  bool full_estimated = false;
  bool identical = true;
};

ScalePoint measure_scale(std::size_t n, std::size_t d, std::size_t k,
                         bool full_feasible, const ScalePoint* extrapolate) {
  ScalePoint point;
  point.n = n;
  RandomStream setup(902000 + static_cast<std::uint64_t>(n % 9973));
  Matrix features = random_gaussian(n, d, setup);
  // Move the features in: at n = 10^6 the matrix is the dominant
  // allocation and must not be duplicated.
  const FeatureKdppOracle oracle(std::move(features), k);

  SessionOptions options;
  options.distill.enabled = true;
  Timer prime_timer;
  SamplerSession session(oracle, options);
  point.prime_ms = prime_timer.millis();

  const std::size_t draws = 32;
  const std::uint64_t seed = 902777;
  {
    RandomStream rng(seed);  // untimed warmup
    (void)session.draw_many(draws, rng, ExecutionContext::serial());
  }
  std::size_t proposals = 0;
  std::size_t accepted = 0;
  std::vector<std::vector<int>> reference_items;
  for (int pass = 0; pass < 3; ++pass) {
    RandomStream rng(seed);
    Timer timer;
    auto results = session.draw_many(draws, rng, ExecutionContext::serial());
    const double ms = timer.millis() / static_cast<double>(draws);
    if (pass == 0 || ms < point.draw_ms) point.draw_ms = ms;
    if (pass == 0) {
      for (const auto& r : results) {
        proposals += r.diag.proposals;
        accepted += r.diag.accepted_batches;
      }
      reference_items = items_of(std::move(results));
    }
  }
  point.accept_rate = proposals == 0
                          ? 1.0
                          : static_cast<double>(accepted) /
                                static_cast<double>(proposals);

  // Determinism: the distilled draw sequence is a function of the seed
  // alone at every pool size.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    point.identical =
        point.identical &&
        items_of(session.draw_many(draws, rng, ctx)) == reference_items;
  }

  if (full_feasible) {
    // The full-n session path: base spectral preprocessing (the n x d
    // eigenvector matrix, the n-sized marginal caches) at prime time,
    // O(n d) rounds per draw.
    SessionOptions full_options;
    Timer full_prime_timer;
    SamplerSession full_session(oracle, full_options);
    point.full_prime_ms = full_prime_timer.millis();
    const std::size_t full_draws = 4;
    RandomStream rng(seed);
    Timer timer;
    (void)full_session.draw_many(full_draws, rng, ExecutionContext::serial());
    point.full_draw_ms = timer.millis() / static_cast<double>(full_draws);
  } else {
    // Infeasible at this n on the reference container (the prime alone
    // would materialize two further n x d matrices and run an O(n d²)
    // eigenvector pass); report the linear-in-n extrapolation from the
    // largest measured point, marked estimated.
    point.full_estimated = true;
    const double scale = static_cast<double>(n) /
                         static_cast<double>(extrapolate->n);
    point.full_prime_ms = extrapolate->full_prime_ms * scale;
    point.full_draw_ms = extrapolate->full_draw_ms * scale;
  }
  return point;
}

}  // namespace

int main() {
  print_header(
      "EXP-LS", "intermediate-sampling front end at n = 10^6",
      "distillation serves exact draws from a million-item low-rank "
      "ensemble in milliseconds per draw (per-draw cost independent of "
      "n), bit-identical at every pool size, chi-square-consistent with "
      "enumeration at small n; the full-n session path is infeasible at "
      "n = 10^6 (estimated row)");
  JsonSeries json;

  std::printf("\n-- exactness at enumeration scale --\n");
  bool any_regression = exactness_block(json);

  const std::size_t d = 24;
  const std::size_t k = 8;
  std::printf("\n-- scaling sweep: d=%zu k=%zu, serial draws --\n", d, k);
  std::vector<ScalePoint> points;
  points.push_back(measure_scale(10000, d, k, /*full_feasible=*/true,
                                 nullptr));
  points.push_back(measure_scale(100000, d, k, /*full_feasible=*/true,
                                 nullptr));
  points.push_back(measure_scale(1000000, d, k, /*full_feasible=*/false,
                                 &points.back()));

  Table table({"n", "prime_ms", "draw_ms", "accept", "full_prime_ms",
               "full_draw_ms", "draw_speedup", "identical"});
  for (const ScalePoint& point : points) {
    const double speedup = point.full_draw_ms / point.draw_ms;
    const std::string estimate_mark = point.full_estimated ? " (est)" : "";
    table.add_row({fmt_int(point.n), fmt(point.prime_ms, 1),
                   fmt(point.draw_ms, 3), fmt(point.accept_rate, 2),
                   fmt(point.full_prime_ms, 1) + estimate_mark,
                   fmt(point.full_draw_ms, 2) + estimate_mark,
                   fmt(speedup, 1) + "x",
                   point.identical ? "yes" : "NO"});
    any_regression = any_regression || !point.identical;
    json.add_record(
        {JsonSeries::text("experiment", "largescale_distill"),
         JsonSeries::text("family", "feature"),
         JsonSeries::number("n", point.n), JsonSeries::number("d", d),
         JsonSeries::number("k", k),
         JsonSeries::number("prime_ms", point.prime_ms, 3),
         JsonSeries::number("draw_ms", point.draw_ms, 4),
         JsonSeries::number("accept_rate", point.accept_rate, 3),
         JsonSeries::number("full_prime_ms", point.full_prime_ms, 3),
         JsonSeries::number("full_draw_ms", point.full_draw_ms, 3),
         JsonSeries::boolean("full_estimated", point.full_estimated),
         JsonSeries::number("draw_speedup_vs_full", speedup, 1),
         JsonSeries::text("identical", point.identical ? "yes" : "no"),
         JsonSeries::boolean("regression", !point.identical)});
  }
  table.print();

  if (any_regression)
    std::printf("\n! REGRESSION: distilled law or pool-size identity "
                "failed\n");
  json.write(bench_out_path("BENCH_largescale.json"));
  return 0;
}
