// Cholesky (L L^T) factorization for symmetric positive (semi)definite
// matrices, plus PSD validation helpers.
//
// The symmetric DPP code paths use Cholesky both as the fast determinant /
// solve backend and as the arbiter of "is this kernel actually PSD"
// (failure injection tests rely on the strictness of that check).
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logsum.h"

namespace pardpp {

/// Lower-triangular Cholesky factor with solve/determinant helpers.
class CholeskyDecomposition {
 public:
  explicit CholeskyDecomposition(Matrix lower) : lower_(std::move(lower)) {}

  [[nodiscard]] std::size_t size() const noexcept { return lower_.rows(); }
  [[nodiscard]] const Matrix& lower() const noexcept { return lower_; }

  /// log det A = 2 * sum log diag(L).
  [[nodiscard]] double log_det() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < size(); ++i) acc += std::log(lower_(i, i));
    return 2.0 * acc;
  }

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const {
    check_arg(b.size() == size(), "cholesky solve: size mismatch");
    const std::size_t n = size();
    const simd::KernelTable& kernels = simd::active_kernels();
    for (std::size_t i = 0; i < n; ++i) {
      const double acc = b[i] - kernels.dot(lower_.row(i).data(), b.data(), i);
      b[i] = acc / lower_(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = b[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lower_(j, ii) * b[j];
      b[ii] = acc / lower_(ii, ii);
    }
    return b;
  }

  /// Solves A X = B.
  [[nodiscard]] Matrix solve_matrix(const Matrix& b) const {
    Matrix x(b.rows(), b.cols());
    std::vector<double> col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      col = solve(std::move(col));
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
    }
    return x;
  }

 private:
  Matrix lower_;
};

/// Incrementally grown Cholesky factorization of a principal submatrix
/// chain A_1 ⊂ A_2 ⊂ ... — the per-query factor behind the batch
/// counting queries: a ConditionalState factors L_T one bordered row per
/// batch element in reused scratch, and `truncate()` can pop back to a
/// shared prefix for callers whose queries literally extend one another.
/// The row-by-row arithmetic is identical to `cholesky()` below, so
/// determinants and solves agree to the last bit with a from-scratch
/// factorization of the same matrix.
///
/// A *committed prefix* supports the cross-round reuse of the sampler
/// commit path (DESIGN.md §2 convention 7): `commit_prefix()` marks the
/// rows factored so far as permanent, after which `truncate()` (and
/// `truncate(size)`) can only pop back to that floor — the accepted
/// rounds' bordered rows are absorbed instead of discarded, and
/// `log_det()` keeps accumulating across rounds. `clear()` resets the
/// floor along with everything else.
class IncrementalCholesky {
 public:
  /// Reserves room for matrices up to `capacity` rows (grows on demand).
  explicit IncrementalCholesky(std::size_t capacity = 0, double tol = 1e-12)
      : tol_(tol) {
    reserve(capacity);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void reserve(std::size_t capacity) {
    if (capacity > cap_) {
      Matrix grown(capacity, capacity);
      for (std::size_t i = 0; i < size_; ++i)
        for (std::size_t j = 0; j <= i; ++j) grown(i, j) = lower_(i, j);
      lower_ = std::move(grown);
      cap_ = capacity;
    }
  }

  /// Drops all rows (reuse the scratch for a fresh matrix).
  /// `max_abs_diag` seeds the positive-definiteness threshold with the
  /// full matrix's largest |diagonal| when the caller knows it upfront —
  /// matching `cholesky()`'s global threshold exactly, where the running
  /// row-by-row maximum alone would judge early pivots more leniently
  /// (and make the verdict depend on the append order).
  void clear(double max_abs_diag = 0.0) noexcept {
    size_ = 0;
    committed_ = 0;
    seed_diag_ = max_abs_diag;
    max_diag_ = max_abs_diag;
    log_det_ = 0.0;
  }

  /// Marks every row factored so far as permanent: `truncate` can no
  /// longer pop below this point. The commit-path hook — accepted rows
  /// join the persistent factor; speculative extensions beyond them stay
  /// poppable.
  void commit_prefix() noexcept { committed_ = size_; }

  [[nodiscard]] std::size_t committed_size() const noexcept {
    return committed_;
  }

  /// Pops every row appended since the last `commit_prefix()`.
  void truncate() { truncate(committed_); }

  /// Pops back to the first `prefix` rows — the factor of the prefix's
  /// principal submatrix, exactly as it was before the later appends:
  /// the tolerance scale is rebuilt from the retained rows' diagonals
  /// (reconstructed from the factor) plus the clear() seed, so the
  /// positive-definiteness verdict of later appends does not depend on
  /// rows that were appended and popped in between.
  void truncate(std::size_t prefix) {
    check_arg(prefix <= size_, "IncrementalCholesky: truncate past size");
    check_arg(prefix >= committed_,
              "IncrementalCholesky: truncate below the committed prefix");
    size_ = prefix;
    max_diag_ = seed_diag_;
    log_det_ = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      const double d = lower_(i, i);
      max_diag_ = std::max(max_diag_, d * d + dot(i, i));
      log_det_ += std::log(d);
    }
    log_det_ *= 2.0;
  }

  /// Appends the bordered row `row` = A(r, 0..r) of the grown matrix
  /// (row.size() == size() + 1, last entry the new diagonal). Returns
  /// false — leaving the factor unchanged — when the extended matrix is
  /// not positive definite beyond the tolerance, mirroring `cholesky()`'s
  /// failure condition (P[T ⊆ S] = 0 in oracle terms).
  [[nodiscard]] bool append(std::span<const double> row) {
    check_arg(row.size() == size_ + 1, "IncrementalCholesky: row size");
    if (size_ + 1 > cap_) reserve(std::max<std::size_t>(2 * cap_, size_ + 1));
    const std::size_t r = size_;
    // The threshold scale is committed only on success: a rejected
    // extension must leave the factor — including the tolerance state —
    // exactly as it was, so probe-style callers (try i, truncate, try j)
    // are not poisoned by a rejected row's large diagonal.
    const double max_diag = std::max(max_diag_, std::abs(row[r]));
    const double threshold = std::max(tol_ * max_diag, 1e-300);
    const simd::KernelTable& kernels = simd::active_kernels();
    for (std::size_t j = 0; j < r; ++j) {
      const double acc =
          row[j] - kernels.dot(lower_.row(r).data(), lower_.row(j).data(), j);
      lower_(r, j) = acc / lower_(j, j);
    }
    const double* row_r = lower_.row(r).data();
    const double diag = row[r] - kernels.dot(row_r, row_r, r);
    if (diag <= threshold) return false;
    lower_(r, r) = std::sqrt(diag);
    log_det_ += 2.0 * std::log(lower_(r, r));
    max_diag_ = max_diag;
    size_ = r + 1;
    return true;
  }

  /// log det of the factored principal submatrix.
  [[nodiscard]] double log_det() const noexcept { return log_det_; }

  [[nodiscard]] double entry(std::size_t i, std::size_t j) const noexcept {
    return lower_(i, j);
  }

  /// Solves R y = b in place (forward substitution with the lower factor),
  /// column-wise over `b`'s `cols` columns of length size() stored
  /// row-major with stride `stride`. With A = R R^T this yields
  /// Y = R^{-1} B, whose Gram Y^T Y equals B^T A^{-1} B — the half-solve
  /// form the incremental Schur complement consumes.
  void forward_solve_rows(double* b, std::size_t cols,
                          std::size_t stride) const {
    const simd::KernelTable& kernels = simd::active_kernels();
    for (std::size_t i = 0; i < size_; ++i) {
      double* bi = b + i * stride;
      for (std::size_t k = 0; k < i; ++k) {
        const double l = lower_(i, k);
        if (l == 0.0) continue;
        kernels.axpy(bi, -l, b + k * stride, cols);
      }
      kernels.scaled_copy(bi, 1.0 / lower_(i, i), bi, cols);
    }
  }

 private:
  [[nodiscard]] double dot(std::size_t i, std::size_t j) const noexcept {
    return simd::dot(lower_.row(i).data(), lower_.row(j).data(),
                     std::min(i, j));
  }

  Matrix lower_;
  std::size_t size_ = 0;
  std::size_t committed_ = 0;
  std::size_t cap_ = 0;
  double tol_ = 1e-12;
  double seed_diag_ = 0.0;  // clear()'s threshold seed, kept for truncate()
  double max_diag_ = 0.0;
  double log_det_ = 0.0;
};

/// Rank-1 update of a Cholesky factor: given lower-triangular L with
/// A = L L^T, rewrites L in place so that L L^T = A + v v^T (the stable
/// hyperbolic-rotation-free scheme of Gill–Golub–Murray–Saunders).
/// `v` is consumed as scratch.
inline void cholesky_update(Matrix& lower, std::span<double> v) {
  check_arg(lower.square() && v.size() == lower.rows(),
            "cholesky_update: size mismatch");
  const std::size_t n = lower.rows();
  for (std::size_t j = 0; j < n; ++j) {
    const double ljj = lower(j, j);
    const double r = std::hypot(ljj, v[j]);
    const double c = r / ljj;
    const double s = v[j] / ljj;
    lower(j, j) = r;
    for (std::size_t i = j + 1; i < n; ++i) {
      lower(i, j) = (lower(i, j) + s * v[i]) / c;
      v[i] = c * v[i] - s * lower(i, j);
    }
  }
}

/// Rank-1 *downdate* of a Cholesky factor: given lower-triangular L with
/// A = L L^T, rewrites L in place so that L L^T = A - v v^T (the
/// LINPACK-style rotation sweep, transposed for lower factors). `v` is
/// consumed as scratch.
///
/// Guarded against indefinite drift: the downdated matrix is positive
/// definite iff ||L^{-1} v||^2 < 1, and that test runs *before* any
/// mutation — on failure (including the near-singular band
/// 1 - ||p||^2 <= tol, which covers exact zero pivots) the function
/// returns false with the factor untouched. A downdate that passes the
/// test but loses a pivot to roundoff during the sweep (only possible
/// within roundoff of the tolerance boundary) also returns false, with
/// the factor invalid; callers treat any false as "refactorize from
/// scratch".
[[nodiscard]] inline bool cholesky_downdate(Matrix& lower, std::span<double> v,
                                            double tol = 1e-12) {
  check_arg(lower.square() && v.size() == lower.rows(),
            "cholesky_downdate: size mismatch");
  const std::size_t n = lower.rows();
  // p = L^{-1} v (forward substitution), in place.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = v[i];
    for (std::size_t k = 0; k < i; ++k) acc -= lower(i, k) * v[k];
    v[i] = acc / lower(i, i);
  }
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) norm_sq += v[i] * v[i];
  const double alpha_sq = 1.0 - norm_sq;
  // det(A - vv^T) = det(A) * alpha_sq: reject the indefinite and the
  // numerically singular cases before touching the factor.
  if (!(alpha_sq > tol)) return false;
  // Rotation angles zeroing p from the bottom, growing alpha back to 1.
  std::vector<double> c(n);
  std::vector<double> s(n);
  double alpha = std::sqrt(alpha_sq);
  for (std::size_t ii = n; ii-- > 0;) {
    const double scale = alpha + std::abs(v[ii]);
    const double a = alpha / scale;
    const double b = v[ii] / scale;
    const double norm = std::hypot(a, b);
    c[ii] = a / norm;
    s[ii] = b / norm;
    alpha = scale * norm;
  }
  // Apply the sweep to each row of L (transposed dchdd column update).
  bool ok = true;
  for (std::size_t j = 0; j < n; ++j) {
    double xx = 0.0;
    for (std::size_t i = j + 1; i-- > 0;) {
      const double t = c[i] * xx + s[i] * lower(j, i);
      lower(j, i) = c[i] * lower(j, i) - s[i] * xx;
      xx = t;
    }
    if (!(lower(j, j) > 0.0)) ok = false;
  }
  return ok;
}

/// Attempts a Cholesky factorization; returns nullopt when the matrix is
/// not positive definite beyond `tol` (relative to the largest diagonal).
[[nodiscard]] inline std::optional<CholeskyDecomposition> cholesky(
    const Matrix& a, double tol = 1e-12) {
  check_arg(a.square(), "cholesky: matrix not square");
  const std::size_t n = a.rows();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(a(i, i)));
  const double threshold = std::max(tol * max_diag, 1e-300);
  Matrix lower(n, n);
  // Same dispatched dot as IncrementalCholesky::append, so the two
  // factorizations of one matrix agree to the last bit.
  const simd::KernelTable& kernels = simd::active_kernels();
  for (std::size_t j = 0; j < n; ++j) {
    const double* row_j = lower.row(j).data();
    const double diag = a(j, j) - kernels.dot(row_j, row_j, j);
    if (diag <= threshold) return std::nullopt;
    const double ljj = std::sqrt(diag);
    lower(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double acc = a(i, j) - kernels.dot(lower.row(i).data(), row_j, j);
      lower(i, j) = acc / ljj;
    }
  }
  return CholeskyDecomposition(std::move(lower));
}

/// Cholesky that throws NumericalError on non-PD input.
[[nodiscard]] inline CholeskyDecomposition cholesky_or_throw(const Matrix& a,
                                                             double tol = 1e-12) {
  check_numeric(!failpoint("linalg.cholesky.pivot"),
                "cholesky: injected pivot failure "
                "[failpoint linalg.cholesky.pivot]");
  auto result = cholesky(a, tol);
  check_numeric(result.has_value(), "cholesky: matrix not positive definite");
  return std::move(*result);
}

/// True when the symmetric matrix is PSD up to `jitter` on the diagonal.
/// (A + jitter*I must be positive definite.)
[[nodiscard]] inline bool is_psd(const Matrix& a, double jitter = 1e-9) {
  if (!a.square() || !a.is_symmetric(1e-8)) return false;
  Matrix shifted = a;
  double scale = a.max_abs();
  if (scale == 0.0) scale = 1.0;
  for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += jitter * scale;
  return cholesky(shifted).has_value();
}

/// True when L + L^T is PSD, i.e. L is nonsymmetric positive semidefinite
/// in the sense of Definition 4 of the paper.
[[nodiscard]] inline bool is_npsd(const Matrix& l, double jitter = 1e-9) {
  if (!l.square()) return false;
  return is_psd(l.symmetric_part(), jitter);
}

}  // namespace pardpp
