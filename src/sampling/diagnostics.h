// Result/diagnostics structs shared by all samplers, plus the unified
// GuardEvent channel every SamplerSession degradation/retry/guard event
// flows through (DESIGN.md §2 convention 12).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "parallel/pram.h"

namespace pardpp {

/// What a SamplerSession guard event reports.
enum class GuardEventKind {
  kDrawFailure,         ///< an attempt threw a typed error (detail = what())
  kRetry,               ///< re-attempting on the same ladder rung
  kDegradeProposal,     ///< ladder: persistent → per-draw proposal
  kDegradeUndistilled,  ///< ladder: distilled → full-n path
  kDegradeReference,    ///< ladder: commit → condition() reference
  kSpectralRefresh,     ///< a draw paid eigensolve fallbacks (detail = count)
  kStarvation,          ///< DistillationStarvation surfaced
  kProposalDrift,       ///< ProposalDriftError surfaced
  kPoisoned,            ///< the session poisoned itself (detail = reason)
};

/// Number of GuardEventKind values — sizes per-kind counter arrays (the
/// serving layer's stats surface). Keep in sync with the enum.
inline constexpr std::size_t kGuardEventKindCount =
    static_cast<std::size_t>(GuardEventKind::kPoisoned) + 1;

[[nodiscard]] constexpr const char* guard_event_kind_name(
    GuardEventKind kind) noexcept {
  switch (kind) {
    case GuardEventKind::kDrawFailure:
      return "draw_failure";
    case GuardEventKind::kRetry:
      return "retry";
    case GuardEventKind::kDegradeProposal:
      return "degrade_proposal";
    case GuardEventKind::kDegradeUndistilled:
      return "degrade_undistilled";
    case GuardEventKind::kDegradeReference:
      return "degrade_reference";
    case GuardEventKind::kSpectralRefresh:
      return "spectral_refresh";
    case GuardEventKind::kStarvation:
      return "starvation";
    case GuardEventKind::kProposalDrift:
      return "proposal_drift";
    case GuardEventKind::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

/// One recovery/degradation/guard event from a SamplerSession draw.
/// `draw_index` is the draw's stream index (draw_many position, or the
/// serial draw ordinal), `attempt` the 0-based recovery attempt it
/// happened on.
struct GuardEvent {
  GuardEventKind kind;
  std::size_t draw_index = 0;
  std::size_t attempt = 0;
  std::string detail;
};

/// Observer for GuardEvents. Invoked under a session-internal mutex
/// (events from concurrent draw_many chunks arrive serialized); keep it
/// cheap and do not re-enter the session from inside it.
using GuardEventSink = std::function<void(const GuardEvent&)>;

/// Counters describing one sampler execution.
struct SampleDiagnostics {
  std::size_t rounds = 0;             ///< batch rounds executed
  std::size_t proposals = 0;          ///< rejection proposals evaluated
  std::size_t accepted_batches = 0;   ///< proposals that were accepted
  std::size_t duplicate_rejects = 0;  ///< proposals containing a repeat
  std::size_t ratio_overflows = 0;    ///< proposals with ratio above the cap
                                      ///< (Algorithm 3 "bad events")
  std::size_t oracle_calls = 0;       ///< counting-oracle queries issued
  std::size_t wave_count = 0;         ///< batched query_many rounds issued
  std::size_t wave_queries = 0;       ///< queries answered in those rounds
  std::size_t spectral_refreshes = 0; ///< commit-path eigensolve fallbacks
                                      ///< paid during this draw (0 on the
                                      ///< factor-native fast path and on
                                      ///< the condition() reference)
  std::size_t tail_candidates = 0;    ///< persistent-proposal candidates that
                                      ///< fell back to the exact full-n
                                      ///< inverse-CDF tail path (0 when the
                                      ///< mode is off)
  std::size_t heavy_tail_pools = 0;   ///< persistent-proposal pools whose
                                      ///< tail count exceeded the budget and
                                      ///< triggered a domain re-validation
  std::size_t recovery_retries = 0;   ///< extra attempts the session's
                                      ///< recovery ladder spent on this draw
                                      ///< (0 = first attempt succeeded)
  std::size_t degradation_level = 0;  ///< ladder rung that produced this
                                      ///< draw: 0 configured path, 1
                                      ///< per-draw proposal, 2 undistilled,
                                      ///< 3 condition() reference
  PramStats pram;                     ///< PRAM depth/work/machines ledger

  /// Overall acceptance frequency of the rejection stages.
  [[nodiscard]] double acceptance_rate() const {
    return proposals == 0 ? 1.0
                          : static_cast<double>(accepted_batches) /
                                static_cast<double>(proposals);
  }

  /// Mean counting queries amortized onto one shared-prefix wave state —
  /// the speculative work the batch-query engine answers per conditional
  /// factorization round (1.0 = nothing amortized, serial behaviour).
  [[nodiscard]] double queries_per_wave() const {
    return wave_count == 0 ? 1.0
                           : static_cast<double>(wave_queries) /
                                 static_cast<double>(wave_count);
  }
};

/// A sample (original ground-set ids, sorted) plus its diagnostics.
struct SampleResult {
  std::vector<int> items;
  SampleDiagnostics diag;
};

}  // namespace pardpp
