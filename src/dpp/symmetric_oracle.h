// Counting oracle for symmetric k-DPPs (Definition 3 + Definition 6).
//
// For symmetric PSD L with spectrum lambda and eigenbasis V:
//   Z            = e_k(lambda)
//   P[i ∈ S]     = sum_m lambda_m V_im^2 e_{k-1}(lambda \ m) / e_k(lambda)
//   P[T ⊆ S]     = det(L_T) e_{k-t}(spectrum of L^T) / e_k(lambda)
// where L^T is the Schur-complement conditional ensemble (paper §3.2).
// Elementary symmetric polynomials are evaluated in log domain (esp.h);
// the base oracle's eigendecomposition is cached lazily.
//
// The commit path is *factorization-native* (DESIGN.md §2 convention 9):
// instead of refreshing the spectrum after every accepted round, the
// committed state maintains power traces and diagonal moments of the
// (scaled) conditional ensemble — d_v[i] = (Mhat^v)_ii, t_v = tr(Mhat^v)
// — and downdates them through the accepted block's Cholesky factor
// (BlockMomentProbe in linalg/schur.h). Counting queries recover e_j via
// Newton's identities (esp_from_power_traces) and singleton marginals via
// the adjugate expansion p_i = sum_v (-1)^{v-1} e_{k-v} d_v[i] / e_k.
// Every fast-path quantity carries a |term| accumulation; when a
// cancellation / drift guard trips, the state falls back to one full
// spectral refresh (and reseeds the moment basis from the clamped
// spectrum), so answers stay inside the 1e-10 agreement contract with
// make_condition_reference at all times.
//
// Batch queries go through a ConditionalState (oracle.h): the shared
// factors are cached here and primed once by prepare_concurrent(); the
// state answers |T| = 1 queries by a cached marginal lookup, small
// extensions by the factor-side moment probe against the shared power
// basis, and the rest by an incrementally grown Cholesky factor feeding a
// scratch-reusing Schur complement + eigensolve — no per-query
// refactorization of the shared prefix.
#pragma once

#include <optional>

#include "distributions/oracle.h"
#include "linalg/esp.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace pardpp {

class SymmetricKdppOracle final : public CountingOracle {
 public:
  /// Wraps the k-DPP with ensemble matrix `l` (symmetric PSD). With
  /// `validate` the matrix is checked for symmetry and PSD-ness; internal
  /// conditioning steps skip the check.
  SymmetricKdppOracle(Matrix l, std::size_t k, bool validate = true);

  [[nodiscard]] std::size_t ground_size() const override { return l_.rows(); }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  /// Restriction to (possibly repeated) items with per-row scales:
  /// gathers the principal block and scales it symmetrically,
  /// diag(s) L_items diag(s) — PSD by construction, so validation is
  /// skipped.
  [[nodiscard]] std::unique_ptr<CountingOracle> restrict_to(
      std::span<const int> items,
      std::span<const double> scales) const override;
  /// weights[i] = L_ii, rank_bound = n. One pass over the diagonal.
  [[nodiscard]] DistillationProfile distillation_profile() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override {
    return "symmetric-kdpp";
  }
  void prepare_concurrent() const override;
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override;
  /// Commit-path state: factor-native moment downdates + Newton-identity
  /// counting on persistent scratch, with the committed base-prefix
  /// Cholesky grown across rounds (DESIGN.md §2 conventions 7 and 9).
  [[nodiscard]] std::unique_ptr<CommittedOracle> make_committed()
      const override;

  /// The (conditional) ensemble matrix.
  [[nodiscard]] const Matrix& ensemble() const noexcept { return l_; }

  /// log Z = log e_k(lambda).
  [[nodiscard]] double log_partition() const override;

 private:
  class State;
  class Committed;

  /// Shared moment basis of the scaled ensemble Mhat = L / scale: power
  /// traces t_v = tr(Mhat^v) and diagonal moments d_v[i] = (Mhat^v)_ii
  /// for v = 1..jmax, each with a parallel nonnegative |term|
  /// accumulation bounding the roundoff/drift the stored value may carry
  /// (DESIGN.md §2 convention 9). The fixed per-run scale keeps e_j
  /// inside double range; log-domain results are shifted by j*log_scale.
  struct PowerBasis {
    double scale = 1.0;
    double log_scale = 0.0;
    std::vector<double> traces;      ///< t_v, v = 1..jmax
    std::vector<double> traces_abs;  ///< |term| companions of t_v
    std::vector<double> diag;        ///< d_v[i] at [(v-1)*n + i]
    std::vector<double> diag_abs;    ///< |term| companions of d_v[i]
  };

  const SymmetricEigen& eigen() const;
  const LogEspTable& esp() const;
  const std::vector<double>& marginal_cache() const;
  const std::vector<double>& log_marginal_cache() const;
  const PowerBasis& power_basis() const;

  Matrix l_;
  std::size_t k_;
  mutable std::optional<SymmetricEigen> eigen_;
  mutable std::optional<LogEspTable> esp_;
  mutable std::optional<std::vector<double>> marginals_;
  mutable std::optional<std::vector<double>> log_marginals_;
  mutable std::optional<PowerBasis> power_;
};

}  // namespace pardpp
