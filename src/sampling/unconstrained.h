// Sampling unconstrained DPPs — Remark 15 + the Theorem 41 dispatch.
//
// Remark 15: draw |S| from the cardinality distribution P[|S| = j] ∝
// e_j(L) (one parallel round), then run the fixed-size sampler — batched
// (Theorem 10) for symmetric L, entropic (Theorem 8.2) otherwise.
//
// For symmetric L, Theorem 41 offers the alternative filtering route with
// depth ~ sigma_max(K) sqrt(n) log(n/eps); `sample_dpp` with
// Strategy::kAuto picks whichever of sqrt(tr K) and sigma sqrt(n) is
// smaller — exactly the min(.) in the theorem statement.
#pragma once

#include <string>

#include "linalg/matrix.h"
#include "parallel/pram.h"
#include "sampling/batched.h"
#include "sampling/diagnostics.h"
#include "sampling/entropic.h"
#include "sampling/filtering.h"
#include "support/random.h"

namespace pardpp {

struct UnconstrainedOptions {
  enum class Strategy {
    kAuto,         ///< Theorem 41's min(.): compare the two depth bounds
    kCardinality,  ///< Remark 15: size draw + fixed-size sampler
    kFiltering,    ///< Algorithm 4 (symmetric only)
  };
  Strategy strategy = Strategy::kAuto;
  BatchedOptions batched;      ///< symmetric fixed-size stage
  EntropicOptions entropic;    ///< nonsymmetric fixed-size stage
  FilteringOptions filtering;  ///< filtering stage
};

struct UnconstrainedSampleResult {
  std::vector<int> items;
  SampleDiagnostics diag;
  std::string strategy_used;  ///< "cardinality+batched", "filtering", ...
};

/// Samples the unconstrained DPP with ensemble matrix `l`. Exact for the
/// cardinality routes (conditioned on rejection success); within the
/// filtering options' eps for the filtering route.
[[nodiscard]] UnconstrainedSampleResult sample_dpp(
    const Matrix& l, bool symmetric, RandomStream& rng,
    PramLedger* ledger = nullptr, const UnconstrainedOptions& options = {});

}  // namespace pardpp
