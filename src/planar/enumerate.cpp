#include "planar/enumerate.h"

#include <algorithm>

namespace pardpp {

namespace {

// Backtracking over the lowest-indexed unmatched vertex.
void recurse(const PlanarGraph& g, std::vector<bool>& matched,
             Matching& partial, std::vector<Matching>* out,
             std::uint64_t& count) {
  int v = -1;
  for (std::size_t i = 0; i < g.num_vertices(); ++i) {
    if (!matched[i]) {
      v = static_cast<int>(i);
      break;
    }
  }
  if (v < 0) {
    ++count;
    if (out != nullptr) out->push_back(canonical_matching(partial));
    return;
  }
  matched[static_cast<std::size_t>(v)] = true;
  for (const int u : g.neighbors(v)) {
    if (matched[static_cast<std::size_t>(u)]) continue;
    matched[static_cast<std::size_t>(u)] = true;
    partial.emplace_back(std::min(v, u), std::max(v, u));
    recurse(g, matched, partial, out, count);
    partial.pop_back();
    matched[static_cast<std::size_t>(u)] = false;
  }
  matched[static_cast<std::size_t>(v)] = false;
}

}  // namespace

std::vector<Matching> enumerate_perfect_matchings(const PlanarGraph& g) {
  std::vector<Matching> out;
  if (g.num_vertices() % 2 != 0) return out;
  std::vector<bool> matched(g.num_vertices(), false);
  Matching partial;
  std::uint64_t count = 0;
  recurse(g, matched, partial, &out, count);
  return out;
}

std::uint64_t count_perfect_matchings_brute(const PlanarGraph& g) {
  if (g.num_vertices() % 2 != 0) return 0;
  std::vector<bool> matched(g.num_vertices(), false);
  Matching partial;
  std::uint64_t count = 0;
  recurse(g, matched, partial, nullptr, count);
  return count;
}

Matching canonical_matching(Matching m) {
  for (auto& [u, v] : m) {
    if (u > v) std::swap(u, v);
  }
  std::sort(m.begin(), m.end());
  return m;
}

}  // namespace pardpp
