#include "dpp/unconstrained_oracle.h"

#include "dpp/ensemble.h"
#include "linalg/lu.h"
#include "linalg/schur.h"
#include "support/logsum.h"

namespace pardpp {

UnconstrainedDpp::UnconstrainedDpp(Matrix l, bool symmetric, bool validate)
    : l_(std::move(l)), symmetric_(symmetric) {
  check_arg(l_.square(), "UnconstrainedDpp: matrix not square");
  if (validate) validate_ensemble(l_, symmetric_);
}

const Matrix& UnconstrainedDpp::kernel() const {
  if (!kernel_.has_value()) kernel_ = marginal_kernel(l_);
  return *kernel_;
}

double UnconstrainedDpp::log_partition() const {
  if (!log_partition_.has_value()) log_partition_ = log_partition_function(l_);
  return *log_partition_;
}

double UnconstrainedDpp::log_joint_marginal(std::span<const int> t) const {
  if (t.empty()) return 0.0;
  const auto sld = signed_log_det(kernel().principal(t));
  // det(K_T) is a probability; clamp roundoff-negative values to zero.
  if (sld.sign <= 0) return kNegInf;
  return std::min(sld.log_abs, 0.0);
}

std::vector<double> UnconstrainedDpp::marginals() const {
  const auto& k = kernel();
  std::vector<double> p(ground_size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = std::clamp(k(i, i), 0.0, 1.0);
  return p;
}

double UnconstrainedDpp::log_mass(std::span<const int> s) const {
  if (s.empty()) return -log_partition();
  const auto sld = signed_log_det(l_.principal(s));
  if (sld.sign <= 0) return kNegInf;
  return sld.log_abs - log_partition();
}

UnconstrainedDpp UnconstrainedDpp::condition_include(
    std::span<const int> t) const {
  const auto result = condition_ensemble(l_, t, symmetric_);
  return UnconstrainedDpp(result.reduced, symmetric_, /*validate=*/false);
}

}  // namespace pardpp
