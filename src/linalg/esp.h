// Elementary symmetric polynomials of nonnegative spectra, in log domain.
//
// For a symmetric PSD ensemble matrix L with eigenvalues lambda, the k-DPP
// partition function is e_k(lambda) and joint/singleton marginals reduce to
// ratios of e_j's, including "leave-one-out" values e_j(lambda \ m). These
// quantities overflow double at tiny problem sizes, so everything here is
// carried as logarithms and combined with log_add.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "support/logsum.h"

namespace pardpp {

/// Returns {log e_0, ..., log e_jmax} of the nonnegative values `lambda`
/// (negative inputs are clamped to zero — they only arise as roundoff on
/// PSD spectra). e_0 = 1 by convention.
[[nodiscard]] std::vector<double> log_esp(std::span<const double> lambda,
                                          std::size_t jmax);

/// Clamps roundoff-level eigenvalues to exact zeros, so rank deficiency
/// is detected by the ESP recurrence (e_j of a rank-r spectrum must
/// vanish for j > r). The floor is the single numerically load-bearing
/// tolerance of the determinantal oracles — every path that feeds a
/// conditional spectrum into log_esp must clamp with this one helper so
/// the incremental and from-scratch resolves agree on what counts as
/// zero.
inline void clamp_spectrum_to_rank(std::vector<double>& lambda) {
  double top = 0.0;
  for (const double v : lambda) top = std::max(top, v);
  const double floor = top * 1e-12 * static_cast<double>(lambda.size());
  for (double& v : lambda) {
    if (v < floor) v = 0.0;
  }
}

/// Prefix/suffix table of log elementary symmetric polynomials supporting
/// leave-one-out queries, the standard device behind k-DPP marginals:
/// P[i in S] = sum_m lambda_m V_im^2 e_{k-1}(lambda \ m) / e_k(lambda).
class LogEspTable {
 public:
  /// Builds the table for queries with j <= jmax.
  LogEspTable(std::span<const double> lambda, std::size_t jmax);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t jmax() const noexcept { return jmax_; }

  /// log e_j over the full value set.
  [[nodiscard]] double log_e(std::size_t j) const;

  /// log e_j(lambda \ {m}).
  [[nodiscard]] double log_e_without(std::size_t m, std::size_t j) const;

 private:
  std::size_t n_;
  std::size_t jmax_;
  // prefix_[m] = log esp of lambda[0..m) (row length jmax+1);
  // suffix_[m] = log esp of lambda[m..n).
  std::vector<std::vector<double>> prefix_;
  std::vector<std::vector<double>> suffix_;
};

/// Elementary symmetric polynomials recovered from power traces via
/// Newton's identities, in *linear* domain:
///   j e_j = sum_{v=1..j} (-1)^{v-1} e_{j-v} t_v,   t_v = tr(M^v).
/// This is the factor-native counting transform of the commit path
/// (DESIGN.md §2 convention 9): the traces of a conditional ensemble are
/// maintainable under rank-1/block downdates without an eigensolve, and
/// the e_j follow from them in O(jmax^2).
///
/// The alternating sum cancels catastrophically on near-rank-deficient
/// spectra, so each value carries a conditioning monitor: `abs[j]`
/// accumulates the recurrence with |terms| instead of signed terms, and
/// the result is trustworthy only while e_j stays a guarded fraction of
/// that accumulation. Callers must check `well_conditioned` and fall back
/// to a spectral evaluation when it fails — the monitor is what keeps the
/// fast path inside the oracles' 1e-10 agreement contract.
struct NewtonEsp {
  std::vector<double> e;    ///< e_0..e_jmax of the input's spectrum
  std::vector<double> abs;  ///< |term| accumulation feeding each e_j

  /// True when e_j is positive, finite, and at least 1/guard of its
  /// |term| accumulation — i.e. the relative error from cancellation is
  /// bounded by ~guard * machine epsilon.
  [[nodiscard]] bool well_conditioned(std::size_t j, double guard) const {
    return j < e.size() && std::isfinite(e[j]) && e[j] > 0.0 &&
           abs[j] <= guard * e[j];
  }
};

/// Default cancellation guard for NewtonEsp consumers: with
/// abs/e <= 1e3 the cancellation error stays ~1e-13 relative, two orders
/// under the 1e-10 oracle agreement gate.
inline constexpr double kEspCancelGuard = 1e3;

/// Builds NewtonEsp from `power_traces`, where power_traces[v-1] =
/// tr(M^v) for v = 1..jmax (all nonnegative for PSD M; callers pass
/// traces of a *scaled* matrix M/s to keep e_j inside double range and
/// shift the results by j log s afterwards).
[[nodiscard]] NewtonEsp esp_from_power_traces(
    std::span<const double> power_traces, std::size_t jmax);

/// Eigenmode selection weights of a k-DPP with spectrum `lambda`:
/// w_m = lambda_m e_{k-1}(lambda \ m) / e_k(lambda), written into `w`
/// (resized to lambda.size()). The w_m are the probabilities that
/// eigenvector m participates in the sample's projection mixture — they
/// sum to k, and p_i = sum_m w_m V_im^2 recovers the singleton marginals.
/// `table` must be the LogEspTable of `lambda` with jmax >= k, and
/// e_k(lambda) must be nonzero.
inline void esp_mode_weights(std::span<const double> lambda,
                             const LogEspTable& table, std::size_t k,
                             std::vector<double>& w) {
  w.assign(lambda.size(), 0.0);
  if (k == 0) return;
  const double log_z = table.log_e(k);
  for (std::size_t m = 0; m < lambda.size(); ++m) {
    if (lambda[m] <= 0.0) continue;
    w[m] = std::exp(std::log(lambda[m]) + table.log_e_without(m, k - 1) -
                    log_z);
  }
}

}  // namespace pardpp
