// Counting oracle for general determinantal families via the
// characteristic-polynomial engine:
//   * k-DPPs with nonsymmetric PSD ensembles (Definitions 4-6),
//   * Partition-DPPs with r = O(1) parts (Definition 7),
// and, as the r = 1 special case, a slower cross-check path for symmetric
// k-DPPs (the test suite compares it against SymmetricKdppOracle).
//
// Conditioning is a Schur complement plus a decrement of the per-part
// target counts (paper §3.2); the engine cache is rebuilt lazily per
// conditional state.
#pragma once

#include <optional>

#include "distributions/oracle.h"
#include "dpp/charpoly_engine.h"
#include "linalg/matrix.h"

namespace pardpp {

class GeneralDppOracle final : public CountingOracle {
 public:
  /// k-DPP with (possibly nonsymmetric) PSD ensemble `l`.
  GeneralDppOracle(Matrix l, std::size_t k, bool validate = true);

  /// Partition-DPP: `part_of[i]` in [0, r), `counts[a]` = required size of
  /// the intersection with part a.
  GeneralDppOracle(Matrix l, std::vector<int> part_of,
                   std::vector<int> counts, bool validate = true);

  [[nodiscard]] std::size_t ground_size() const override { return l_.rows(); }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override { return "general-dpp"; }
  void prepare_concurrent() const override;
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override;
  /// Commit-path state: each accepted round seeds the conditioned
  /// oracle's partition coefficient from the accepted trial's counting
  /// answer and the elimination block's determinant (chain rule), so the
  /// engine's full partition grid sweep is never re-run mid-run
  /// (DESIGN.md §2 convention 7).
  [[nodiscard]] std::unique_ptr<CommittedOracle> make_committed()
      const override;

  [[nodiscard]] const Matrix& ensemble() const noexcept { return l_; }
  [[nodiscard]] std::span<const int> part_of() const { return part_of_; }
  [[nodiscard]] std::span<const int> counts() const { return counts_; }

  /// log of sum over feasible sets of det(L_S) — the partition function.
  [[nodiscard]] double log_partition() const;

 private:
  class State;
  class Committed;

  const CharPolyEngine& engine() const;
  /// Cached log partition coefficient: the engine's grid sweep for
  /// log_count(counts) is paid once per conditional state of the oracle,
  /// not once per counting query.
  [[nodiscard]] LogCoefficient partition_coefficient() const;
  [[nodiscard]] std::vector<int> batch_part_counts(
      std::span<const int> t) const;

  Matrix l_;
  std::vector<int> part_of_;
  std::vector<int> counts_;
  std::size_t k_;
  mutable std::optional<CharPolyEngine> engine_;
  mutable std::optional<LogCoefficient> partition_;
};

}  // namespace pardpp
