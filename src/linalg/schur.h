// Schur complements.
//
// Conditioning a determinantal distribution on the inclusion of a set T is
// exactly a Schur complement of the ensemble matrix (paper §3.2):
//   L^T = L_{~T} - L_{~T,T} (L_{T,T})^{-1} L_{T,~T},
// and the chain rule det(L_{T ∪ F}) = det(L_{T,T}) det((L^T)_F) is what
// keeps counting consistent across conditioning steps. The elimination
// block is factored with Cholesky when symmetric and pivoted LU otherwise.
#pragma once

#include <span>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "support/logsum.h"

namespace pardpp {

/// Result of eliminating the block indexed by `elim`.
struct SchurResult {
  Matrix reduced;            ///< M_KK - M_KE M_EE^{-1} M_EK, in `keep` order
  double log_abs_det_elim;   ///< log |det M_EE|
  int det_sign_elim;         ///< sign of det M_EE (0 when singular)
};

/// Computes the Schur complement of M with respect to the `elim` block.
/// `keep` and `elim` must be disjoint index sets into M. When `symmetric`
/// is true the elimination block must be positive definite (throws
/// NumericalError otherwise); the general path throws on a singular block.
[[nodiscard]] SchurResult schur_complement(const Matrix& m,
                                           std::span<const int> keep,
                                           std::span<const int> elim,
                                           bool symmetric);

/// Incremental symmetric Schur complement: eliminates the `elim` block of
/// symmetric `m` using an already-built IncrementalCholesky of
/// m.principal(elim) — the factor a shared-prefix batch query grew row by
/// row — instead of refactoring it. Writes
///   reduced = M_KK - Y^T Y,   Y = R^{-1} M_EK   (M_EE = R R^T),
/// which equals the symmetric `schur_complement` path to roundoff while
/// doing one forward substitution instead of a full solve. `reduced` and
/// `y_scratch` are caller-owned scratch, reused across the queries of a
/// wave; `reduced` is reallocated only when the kept block's size changes.
void schur_complement_sym_into(const Matrix& m, std::span<const int> keep,
                               std::span<const int> elim,
                               const IncrementalCholesky& chol,
                               std::vector<double>& y_scratch,
                               Matrix& reduced);

/// Convenience for ensemble conditioning: eliminates T, keeps the
/// complement of T in ascending original order.
[[nodiscard]] SchurResult condition_ensemble(const Matrix& l,
                                             std::span<const int> t,
                                             bool symmetric);

/// Symmetric `condition_ensemble` on caller-owned scratch — the
/// commit-path conditioning step of the round loops: factors the
/// elimination block L_TT into `chol` one bordered row at a time (throws
/// NumericalError when the block is not PD, i.e. conditioning on a
/// probability-zero event), then writes the Schur complement into
/// `reduced` via the half-solve. No oracle, no per-round allocations once
/// the scratch has warmed up.
void condition_ensemble_sym_into(const Matrix& l, std::span<const int> t,
                                 IncrementalCholesky& chol,
                                 std::vector<double>& y_scratch,
                                 std::vector<int>& keep_scratch,
                                 Matrix& reduced);

/// The complement of a sorted-or-not index set within {0..n-1}, ascending.
[[nodiscard]] std::vector<int> complement_indices(std::size_t n,
                                                  std::span<const int> subset);

}  // namespace pardpp
