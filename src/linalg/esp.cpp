#include "linalg/esp.h"

#include <algorithm>
#include <cmath>

#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

namespace {

// log of one input value, clamping roundoff negatives to zero.
double log_value(double v) { return v > 0.0 ? std::log(v) : kNegInf; }

// One step of the esp recurrence in log domain:
// e_j <- e_j + v * e_{j-1}, applied descending in j.
void esp_step(std::vector<double>& log_e, double log_v, std::size_t jmax) {
  if (log_v == kNegInf) return;
  for (std::size_t j = jmax; j >= 1; --j) {
    log_e[j] = log_add(log_e[j], log_v + log_e[j - 1]);
  }
}

}  // namespace

std::vector<double> log_esp(std::span<const double> lambda, std::size_t jmax) {
  std::vector<double> log_e(jmax + 1, kNegInf);
  log_e[0] = 0.0;
  for (const double v : lambda) esp_step(log_e, log_value(v), jmax);
  return log_e;
}

LogEspTable::LogEspTable(std::span<const double> lambda, std::size_t jmax)
    : n_(lambda.size()), jmax_(jmax) {
  prefix_.resize(n_ + 1);
  suffix_.resize(n_ + 1);
  // The two per-shift recurrence sweeps are independent of each other;
  // they run as one fork-join pair on the linalg pool when the table is
  // big enough to pay the dispatch.
  const auto build_prefix = [&] {
    prefix_[0].assign(jmax + 1, kNegInf);
    prefix_[0][0] = 0.0;
    for (std::size_t m = 0; m < n_; ++m) {
      prefix_[m + 1] = prefix_[m];
      esp_step(prefix_[m + 1], log_value(lambda[m]), jmax);
    }
  };
  const auto build_suffix = [&] {
    suffix_[n_].assign(jmax + 1, kNegInf);
    suffix_[n_][0] = 0.0;
    for (std::size_t m = n_; m-- > 0;) {
      suffix_[m] = suffix_[m + 1];
      esp_step(suffix_[m], log_value(lambda[m]), jmax);
    }
  };
  const ExecutionContext& ctx = linalg_context();
  if (ctx.can_fan_out() && n_ * (jmax + 1) >= 1u << 12) {
    parallel_invoke(*ctx.pool(), {build_prefix, build_suffix});
  } else {
    build_prefix();
    build_suffix();
  }
}

NewtonEsp esp_from_power_traces(std::span<const double> power_traces,
                                std::size_t jmax) {
  check_arg(power_traces.size() >= jmax,
            "esp_from_power_traces: need traces up to jmax");
  NewtonEsp out;
  out.e.assign(jmax + 1, 0.0);
  out.abs.assign(jmax + 1, 0.0);
  out.e[0] = 1.0;
  out.abs[0] = 1.0;
  for (std::size_t j = 1; j <= jmax; ++j) {
    double acc = 0.0;
    double acc_abs = 0.0;
    double sign = 1.0;
    for (std::size_t v = 1; v <= j; ++v) {
      const double t = power_traces[v - 1];
      acc += sign * out.e[j - v] * t;
      acc_abs += out.abs[j - v] * std::abs(t);
      sign = -sign;
    }
    out.e[j] = acc / static_cast<double>(j);
    out.abs[j] = acc_abs / static_cast<double>(j);
  }
  return out;
}

double LogEspTable::log_e(std::size_t j) const {
  check_arg(j <= jmax_, "LogEspTable: j out of range");
  return prefix_[n_][j];
}

double LogEspTable::log_e_without(std::size_t m, std::size_t j) const {
  check_arg(m < n_, "LogEspTable: index out of range");
  check_arg(j <= jmax_, "LogEspTable: j out of range");
  // e_j(lambda \ m) = sum_{a+b=j} e_a(prefix before m) e_b(suffix after m).
  double acc = kNegInf;
  for (std::size_t a = 0; a <= j; ++a) {
    const double lhs = prefix_[m][a];
    if (lhs == kNegInf) continue;
    const double rhs = suffix_[m + 1][j - a];
    if (rhs == kNegInf) continue;
    acc = log_add(acc, lhs + rhs);
  }
  return acc;
}

}  // namespace pardpp
