// PRAM cost model.
//
// The paper states its results in the PRAM model: parallel *time* is the
// number of sequential rounds of Õ(1)-cost primitives (counting-oracle
// queries, NC linear algebra), and the machine bound is the width of the
// widest round. The host machine's core count is irrelevant to those
// quantities, so pardpp tracks them explicitly: every sampler charges its
// logical rounds to a `PramLedger`, and benchmarks report the ledger.
//
// Conventions (documented in DESIGN.md §1):
//  * one counting-oracle query (or batch of independent queries issued
//    together) = one round of depth 1;
//  * a batch of w independent queries occupies w machines in that round;
//  * recursive branches that run concurrently contribute the *maximum* of
//    their depths and the *sum* of their work (fork-join semantics).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

namespace pardpp {

/// Aggregate PRAM cost of one algorithm execution.
struct PramStats {
  double depth = 0.0;            ///< critical-path length in rounds
  double work = 0.0;             ///< total primitive invocations
  std::size_t rounds = 0;        ///< number of top-level sequential rounds
  std::size_t max_machines = 1;  ///< width of the widest round
  std::size_t oracle_calls = 0;  ///< counting-oracle queries issued

  /// Sequential composition: this, then `next`.
  void append_sequential(const PramStats& next) {
    depth += next.depth;
    work += next.work;
    rounds += next.rounds;
    max_machines = std::max(max_machines, next.max_machines);
    oracle_calls += next.oracle_calls;
  }

  /// Fork-join composition of concurrently executing children.
  void append_parallel(std::span<const PramStats> children) {
    double max_depth = 0.0;
    std::size_t round_max = 0;
    std::size_t machines = 0;
    for (const auto& child : children) {
      max_depth = std::max(max_depth, child.depth);
      round_max = std::max(round_max, child.rounds);
      machines += child.max_machines;
      work += child.work;
      oracle_calls += child.oracle_calls;
    }
    depth += max_depth;
    rounds += round_max;
    max_machines = std::max(max_machines, machines);
  }
};

/// Mutable ledger passed (optionally) through the samplers. A null ledger
/// is always legal; the helpers below are no-ops on nullptr.
class PramLedger {
 public:
  /// Charges one parallel round of `machines` independent unit-cost
  /// primitives, `oracle_calls` of which were counting-oracle queries.
  void round(std::size_t machines, std::size_t oracle_calls = 0,
             double depth_cost = 1.0) {
    stats_.depth += depth_cost;
    stats_.rounds += 1;
    stats_.work += static_cast<double>(std::max<std::size_t>(machines, 1));
    stats_.max_machines = std::max(stats_.max_machines, machines);
    stats_.oracle_calls += oracle_calls;
  }

  /// Merges child executions that ran concurrently (fork-join).
  void fork_join(std::span<const PramStats> children) {
    stats_.append_parallel(children);
  }

  /// Merges a child execution that ran sequentially after this one.
  void sequential(const PramStats& child) { stats_.append_sequential(child); }

  [[nodiscard]] const PramStats& stats() const noexcept { return stats_; }

  void reset() noexcept { stats_ = PramStats{}; }

 private:
  PramStats stats_;
};

/// No-op helpers so call sites can stay unconditional on a nullable ledger.
inline void charge_round(PramLedger* ledger, std::size_t machines,
                         std::size_t oracle_calls = 0,
                         double depth_cost = 1.0) {
  if (ledger != nullptr) ledger->round(machines, oracle_calls, depth_cost);
}

}  // namespace pardpp
