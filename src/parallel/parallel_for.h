// parallel_for / parallel_invoke helpers on top of ThreadPool.
//
// These provide the fork-join structure of one logical PRAM round: a batch
// of independent bodies executed concurrently, with exceptions propagated
// to the caller through futures (no detached work, no shared mutable state
// beyond what the caller partitions explicitly).
#pragma once

#include <functional>
#include <future>
#include <vector>

#include "parallel/thread_pool.h"

namespace pardpp {

/// Runs fn(i) for i in [begin, end) on the pool, blocking until all bodies
/// complete. Bodies must write to disjoint state. Degenerates to a serial
/// loop when the range is small or the pool has a single worker.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  const std::size_t workers = pool.size();
  if (count == 1 || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

/// Convenience overload on the shared pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  parallel_for(ThreadPool::shared(), begin, end, std::forward<Fn>(fn));
}

/// Runs a set of independent thunks concurrently and waits for all of them.
inline void parallel_invoke(ThreadPool& pool,
                            std::vector<std::function<void()>> thunks) {
  std::vector<std::future<void>> futures;
  futures.reserve(thunks.size());
  for (auto& thunk : thunks) futures.push_back(pool.submit(std::move(thunk)));
  for (auto& f : futures) f.get();
}

}  // namespace pardpp
