// EXP-L36 — Lemma 36 / Corollary 35: the KL-divergence bound driving
// Theorem 29's batch size.
//
// KL(mu_l || mu'_l) <= (l^2 / k)(log(2n/k)/alpha + 1), where mu_l is the
// l-th down-operator marginal and mu'_l the iid-marginal proposal. We
// compute the KL *exactly* by enumeration at small n and compare with the
// bound, showing the l^2/k scaling the batch schedule exploits.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "distributions/hard_instance.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

// Exact KL(mu_l || mu'_l) by enumerating all l-subsets, in the ordered-
// tuple normalization used by the rejection sampler.
double exact_kl(const CountingOracle& oracle, std::size_t l) {
  const auto n = static_cast<int>(oracle.ground_size());
  const auto k = oracle.sample_size();
  const auto p = oracle.marginals();
  double log_falling = 0.0;
  for (std::size_t r = 0; r < l; ++r)
    log_falling += std::log(static_cast<double>(k - r));
  double kl = 0.0;
  for_each_subset(n, static_cast<int>(l), [&](std::span<const int> s) {
    const double log_joint = oracle.log_joint_marginal(s);
    if (log_joint == kNegInf) return;
    const double log_mu_l = log_joint - log_binomial(k, l);
    double log_prop = 0.0;
    for (const int i : s)
      log_prop +=
          std::log(p[static_cast<std::size_t>(i)] / static_cast<double>(k));
    kl += std::exp(log_mu_l) * (log_joint - log_falling - log_prop);
  });
  return kl;
}

}  // namespace

int main() {
  print_header("EXP-L36", "Lemma 36 (KL bound, exact enumeration)",
               "KL(mu_l || mu'_l) <= (l^2/k)(log(2n/k)/alpha + 1); "
               "measured KL scales ~ l^2 and stays below the bound");
  Table table({"family", "n", "k", "l", "KL_exact", "bound(alpha=1)",
               "KL*k/l^2"});
  RandomStream rng(97001);
  const int n = 12;
  const int k = 6;
  const Matrix sym = random_psd(static_cast<std::size_t>(n), 12, rng, 1e-4);
  const Matrix nsym = random_npsd(static_cast<std::size_t>(n), rng, 0.5);
  const SymmetricKdppOracle sym_oracle(sym, static_cast<std::size_t>(k),
                                       false);
  const GeneralDppOracle gen_oracle(nsym, static_cast<std::size_t>(k), false);
  const HardInstanceOracle hard_oracle(12, 6);
  struct Entry {
    const char* name;
    const CountingOracle* oracle;
  };
  for (const auto& [name, oracle] :
       {Entry{"symmetric-kdpp", &sym_oracle},
        Entry{"nonsymmetric-kdpp", &gen_oracle},
        Entry{"hard-instance", &hard_oracle}}) {
    for (const std::size_t l : {1u, 2u, 3u}) {
      const double kl = exact_kl(*oracle, l);
      const double bound = static_cast<double>(l * l) /
                           static_cast<double>(k) *
                           (std::log(2.0 * n / k) + 1.0);
      table.add_row({name, fmt_int(static_cast<std::size_t>(n)),
                     fmt_int(static_cast<std::size_t>(k)), fmt_int(l),
                     fmt(kl, 5), fmt(bound, 5),
                     fmt(kl * k / static_cast<double>(l * l), 4)});
    }
  }
  table.print();
  std::printf(
      "\nThe last column (KL normalized by l^2/k) is roughly flat per\n"
      "family — the l^2/k scaling of Lemma 36. The hard instance sits\n"
      "well below its bound on *average* KL, yet its worst-case ratio\n"
      "blows up (bench_hard_instance): exactly the average-vs-tail gap\n"
      "§5.3's concentration argument must bridge.\n");
  return 0;
}
