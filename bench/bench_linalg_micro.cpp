// Google-benchmark microbenchmarks of the linear-algebra substrate — the
// Õ(1)-depth "oracle primitives" every PRAM round charges. These calibrate
// the wall-clock cost behind one depth unit at various sizes.
#include <benchmark/benchmark.h>

#include "dpp/charpoly_engine.h"
#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/esp.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/pfaffian.h"
#include "linalg/symmetric_eigen.h"
#include "support/random.h"

namespace {

using namespace pardpp;

Matrix psd_fixture(std::size_t n) {
  RandomStream rng(424242);
  return random_psd(n, n, rng, 1e-6);
}

void BM_LuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto lu = lu_factor(a);
    benchmark::DoNotOptimize(lu.log_abs_det());
  }
}
BENCHMARK(BM_LuFactor)->Arg(32)->Arg(64)->Arg(128);

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto chol = cholesky(a);
    benchmark::DoNotOptimize(chol->log_det());
  }
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenValuesOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto values = symmetric_eigenvalues(a);
    benchmark::DoNotOptimize(values.back());
  }
}
BENCHMARK(BM_SymmetricEigenValuesOnly)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto eig = symmetric_eigen(a);
    benchmark::DoNotOptimize(eig.vectors(0, 0));
  }
}
BENCHMARK(BM_SymmetricEigenFull)->Arg(32)->Arg(64)->Arg(128);

// The naive Gram orientation the blocked kernels replace: materialize the
// transpose, then the generic row-major product.
void BM_GramNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(17);
  const Matrix b = random_gaussian(n, 24, rng);
  for (auto _ : state) {
    Matrix g = b.transpose() * b;
    benchmark::DoNotOptimize(g(0, 0));
  }
}
BENCHMARK(BM_GramNaive)->Arg(256)->Arg(1024)->Arg(4096);

// Blocked symmetric rank-k update: the Gram/Schur hot-path kernel
// (sym_rank_k_update streams B's rows once, no transpose materialized).
void BM_GramBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(17);
  const Matrix b = random_gaussian(n, 24, rng);
  for (auto _ : state) {
    Matrix g(24, 24);
    sym_rank_k_update(g, 1.0, b.flat().data(), n, 24, 24);
    benchmark::DoNotOptimize(g(0, 0));
  }
}
BENCHMARK(BM_GramBlocked)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MultiplyTransposedBNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(19);
  const Matrix a = random_gaussian(n, 24, rng);
  const Matrix b = random_gaussian(24, 24, rng);
  for (auto _ : state) {
    Matrix c = a * b.transpose();
    benchmark::DoNotOptimize(c(0, 0));
  }
}
BENCHMARK(BM_MultiplyTransposedBNaive)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MultiplyTransposedB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(19);
  const Matrix a = random_gaussian(n, 24, rng);
  const Matrix b = random_gaussian(24, 24, rng);
  for (auto _ : state) {
    Matrix c = multiply_transposed_b(a, b);
    benchmark::DoNotOptimize(c(0, 0));
  }
}
BENCHMARK(BM_MultiplyTransposedB)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MarginalKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix l = psd_fixture(n);
  for (auto _ : state) {
    auto k = marginal_kernel(l);
    benchmark::DoNotOptimize(k(0, 0));
  }
}
BENCHMARK(BM_MarginalKernel)->Arg(32)->Arg(64)->Arg(128);

void BM_Pfaffian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(7);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = -v;
    }
  for (auto _ : state) {
    auto pf = pfaffian_log(a);
    benchmark::DoNotOptimize(pf.log_abs);
  }
}
BENCHMARK(BM_Pfaffian)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_LogEsp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(9);
  std::vector<double> lambda(n);
  for (auto& v : lambda) v = rng.uniform() * 2.0;
  for (auto _ : state) {
    auto e = log_esp(lambda, n / 2);
    benchmark::DoNotOptimize(e.back());
  }
}
BENCHMARK(BM_LogEsp)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineCacheBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(11);
  const Matrix l = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {static_cast<int>(n / 4)};
  for (auto _ : state) {
    CharPolyEngine engine(l, part_of, 1, counts);
    benchmark::DoNotOptimize(engine.log_count(counts).log_abs);
  }
}
BENCHMARK(BM_EngineCacheBuild)->Arg(24)->Arg(48)->Arg(96);

void BM_EngineJointMarginal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(13);
  const Matrix l = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {static_cast<int>(n / 4)};
  CharPolyEngine engine(l, part_of, 1, counts);
  (void)engine.log_count(counts);  // force cache
  const std::vector<int> batch = {0, 2, 5};
  const std::vector<int> rest = {static_cast<int>(n / 4) - 3};
  for (auto _ : state) {
    auto c = engine.log_count_superset(batch, rest);
    benchmark::DoNotOptimize(c.log_abs);
  }
}
BENCHMARK(BM_EngineJointMarginal)->Arg(24)->Arg(48)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
