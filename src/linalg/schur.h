// Schur complements.
//
// Conditioning a determinantal distribution on the inclusion of a set T is
// exactly a Schur complement of the ensemble matrix (paper §3.2):
//   L^T = L_{~T} - L_{~T,T} (L_{T,T})^{-1} L_{T,~T},
// and the chain rule det(L_{T ∪ F}) = det(L_{T,T}) det((L^T)_F) is what
// keeps counting consistent across conditioning steps. The elimination
// block is factored with Cholesky when symmetric and pivoted LU otherwise.
#pragma once

#include <span>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "support/logsum.h"

namespace pardpp {

/// Result of eliminating the block indexed by `elim`.
struct SchurResult {
  Matrix reduced;            ///< M_KK - M_KE M_EE^{-1} M_EK, in `keep` order
  double log_abs_det_elim;   ///< log |det M_EE|
  int det_sign_elim;         ///< sign of det M_EE (0 when singular)
};

/// Computes the Schur complement of M with respect to the `elim` block.
/// `keep` and `elim` must be disjoint index sets into M. When `symmetric`
/// is true the elimination block must be positive definite (throws
/// NumericalError otherwise); the general path throws on a singular block.
[[nodiscard]] SchurResult schur_complement(const Matrix& m,
                                           std::span<const int> keep,
                                           std::span<const int> elim,
                                           bool symmetric);

/// Incremental symmetric Schur complement: eliminates the `elim` block of
/// symmetric `m` using an already-built IncrementalCholesky of
/// m.principal(elim) — the factor a shared-prefix batch query grew row by
/// row — instead of refactoring it. Writes
///   reduced = M_KK - Y^T Y,   Y = R^{-1} M_EK   (M_EE = R R^T),
/// which equals the symmetric `schur_complement` path to roundoff while
/// doing one forward substitution instead of a full solve. `reduced` and
/// `y_scratch` are caller-owned scratch, reused across the queries of a
/// wave; `reduced` is reallocated only when the kept block's size changes.
void schur_complement_sym_into(const Matrix& m, std::span<const int> keep,
                               std::span<const int> elim,
                               const IncrementalCholesky& chol,
                               std::vector<double>& y_scratch,
                               Matrix& reduced);

/// Convenience for ensemble conditioning: eliminates T, keeps the
/// complement of T in ascending original order.
[[nodiscard]] SchurResult condition_ensemble(const Matrix& l,
                                             std::span<const int> t,
                                             bool symmetric);

/// Symmetric `condition_ensemble` on caller-owned scratch — the
/// commit-path conditioning step of the round loops: factors the
/// elimination block L_TT into `chol` one bordered row at a time (throws
/// NumericalError when the block is not PD, i.e. conditioning on a
/// probability-zero event), then writes the Schur complement into
/// `reduced` via the half-solve. No oracle, no per-round allocations once
/// the scratch has warmed up.
void condition_ensemble_sym_into(const Matrix& l, std::span<const int> t,
                                 IncrementalCholesky& chol,
                                 std::vector<double>& y_scratch,
                                 std::vector<int>& keep_scratch,
                                 Matrix& reduced);

/// The complement of a sorted-or-not index set within {0..n-1}, ascending.
[[nodiscard]] std::vector<int> complement_indices(std::size_t n,
                                                  std::span<const int> subset);

/// Factor-side moment probe of a symmetric elimination (DESIGN.md §2
/// convention 9): the machinery that turns a Schur-complement
/// conditioning step into *downdated power traces and diagonal moments*
/// — the counting quantities of the conditional — without forming the
/// reduced matrix or running an eigensolve.
///
/// For symmetric M with elimination block t, the conditional is
/// M^t = M - Uhat Uhat^T on the kept indices, where Uhat^T = R^{-1}
/// M[t,:] is the half-solve against the block factor M_tt = R R^T (the
/// same forward substitution `schur_complement_sym_into` uses). With the
/// Krylov blocks W_a = Mhat^a Uhat (Mhat = M/scale), moment matrices
/// T_w = Uhat^T W_w, and the Gamma chain
///   Gamma_0 = -I,   Gamma_m = -sum_{w<m} Gamma_{m-1-w} T_w,
/// every power of the downdate expands exactly as
///   (Mhat - Uhat Uhat^T)^v = Mhat^v
///     + sum_{a+b+m=v-1} Mhat^a Uhat Gamma_m Uhat^T Mhat^b,
/// so traces and diagonals of the conditional follow from the base ones
/// by O(|t|^2) bilinear forms per entry. Cost: (orders-1)|t| matvecs to
/// build, versus the O(n^3) eigensolve it replaces.
///
/// Every output carries a parallel |term| accumulation (the same
/// cancellation-monitor convention as NewtonEsp): consumers must guard
/// value/abs ratios and fall back to the spectral path when conditioning
/// degrades.
class BlockMomentProbe {
 public:
  /// Prepares the probe for eliminating `elim` from symmetric `m`,
  /// scaled by 1/`scale`. `chol` must hold the factor of
  /// m.principal(elim) (as grown by the commit/query paths). `orders`
  /// Krylov blocks are built, supporting downdated quantities up to
  /// power vmax = orders.
  void build(const Matrix& m, double scale, std::span<const int> elim,
             const IncrementalCholesky& chol, std::size_t orders);

  /// Downdated traces: out[v-1] = tr(Mhat_t^v) for v = 1..vmax, given
  /// base[v-1] = tr(Mhat^v). Requires vmax <= orders.
  void downdated_traces(std::span<const double> base,
                        std::span<const double> base_abs, std::size_t vmax,
                        std::vector<double>& out,
                        std::vector<double>& out_abs) const;

  /// Downdated diagonal moments over the *full* index set (rows of the
  /// eliminated block land at exactly zero up to accumulated drift — the
  /// commit path's drift observable): out[(v-1)*n + i] = (Mhat_t^v)_ii
  /// for v = 1..vmax, given the same layout in `base`. Requires
  /// vmax <= orders.
  void downdated_diag(std::span<const double> base,
                      std::span<const double> base_abs, std::size_t vmax,
                      std::vector<double>& out,
                      std::vector<double>& out_abs) const;

 private:
  std::size_t n_ = 0;
  std::size_t s_ = 0;
  std::size_t orders_ = 0;
  std::vector<double> w_;      // orders_ blocks of n_ x s_ (row-major)
  std::vector<double> t_;      // orders_ blocks of s_ x s_
  std::vector<double> g_;      // Gamma chain, s_ x s_ per order
  std::vector<double> g_abs_;  // |term| chain of Gamma
  std::vector<double> rows_scratch_;
};

}  // namespace pardpp
