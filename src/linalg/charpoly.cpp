#include "linalg/charpoly.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "linalg/lu.h"
#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

namespace {

// tr(rho M (I + rho M)^{-1}) = n - tr((I + rho M)^{-1}), the derivative of
// log det(I + zM) with respect to log z at z = rho ("expected size" of the
// DPP with rescaled ensemble rho M).
double expected_size(const Matrix& m, double rho) {
  const std::size_t n = m.rows();
  Matrix a = m * rho;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const auto lu = lu_factor(a);
  if (lu.singular()) return static_cast<double>(n);
  const Matrix inv = lu.inverse();
  double tr = 0.0;
  for (std::size_t i = 0; i < n; ++i) tr += inv(i, i);
  return static_cast<double>(n) - tr;
}

}  // namespace

double saddle_point_radius(const Matrix& m, double target_size) {
  check_arg(m.square(), "saddle_point_radius: matrix not square");
  const auto n = static_cast<double>(m.rows());
  if (m.max_abs() == 0.0 || target_size <= 0.0) return 1.0;
  if (target_size >= n) target_size = n - 0.5;
  // Log-bisection on the monotone map rho -> expected_size(rho).
  double lo = 1e-9;
  double hi = 1e9;
  if (expected_size(m, lo) >= target_size) return lo;
  if (expected_size(m, hi) <= target_size) return hi;
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (expected_size(m, mid) < target_size) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi / lo < 1.0 + 1e-6) break;
  }
  return std::sqrt(lo * hi);
}

std::vector<LogCoefficient> charpoly_log_coeffs(const Matrix& m,
                                                std::size_t jmax,
                                                double radius) {
  check_arg(m.square(), "charpoly_log_coeffs: matrix not square");
  const std::size_t n = m.rows();
  jmax = std::min(jmax, n);
  if (radius <= 0.0) radius = saddle_point_radius(m, static_cast<double>(jmax));
  const std::size_t num_nodes = n + 1;
  const CMatrix mc = to_complex(m);

  // Evaluate log det(I + z_t M) at the circle nodes.
  std::vector<double> log_abs(num_nodes);
  std::vector<std::complex<double>> phase(num_nodes);
  const double tau = 2.0 * std::numbers::pi / static_cast<double>(num_nodes);
  // One independent shifted LU per node — the per-shift solves fan out on
  // the linalg pool (each body writes its own slot only).
  linalg_context().for_each(0, num_nodes, [&](std::size_t t) {
    const std::complex<double> z =
        radius * std::polar(1.0, tau * static_cast<double>(t));
    CMatrix a = mc * z;
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
    const auto lu = lu_factor(std::move(a));
    const auto det = lu.log_det();
    log_abs[t] = det.log_abs;
    phase[t] = det.phase;
  });

  // Common-scale inverse DFT: c_j * rho^j = (1/N) sum_t v_t w^{-jt}.
  double scale = kNegInf;
  for (const double v : log_abs) scale = std::max(scale, v);
  if (scale == kNegInf) {
    // det vanished at every node: all coefficients are zero except none.
    return std::vector<LogCoefficient>(jmax + 1);
  }
  std::vector<std::complex<double>> values(num_nodes);
  double max_mag = 0.0;
  for (std::size_t t = 0; t < num_nodes; ++t) {
    values[t] = phase[t] * std::exp(log_abs[t] - scale);
    max_mag = std::max(max_mag, std::abs(values[t]));
  }
  const double noise_floor =
      max_mag * 1e-11 * std::sqrt(static_cast<double>(num_nodes));

  std::vector<LogCoefficient> coeffs(jmax + 1);
  for (std::size_t j = 0; j <= jmax; ++j) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < num_nodes; ++t) {
      const double angle = -tau * static_cast<double>(j * t % num_nodes);
      acc += values[t] * std::polar(1.0, angle);
    }
    acc /= static_cast<double>(num_nodes);
    const double mag = std::abs(acc.real());
    if (mag <= noise_floor) {
      coeffs[j] = LogCoefficient{kNegInf, 0};
    } else {
      coeffs[j] = LogCoefficient{
          std::log(mag) + scale - static_cast<double>(j) * std::log(radius),
          acc.real() > 0.0 ? 1 : -1};
    }
  }
  return coeffs;
}

std::vector<double> charpoly_newton(const Matrix& m, std::size_t jmax) {
  check_arg(m.square(), "charpoly_newton: matrix not square");
  const std::size_t n = m.rows();
  jmax = std::min(jmax, n);
  // Power sums p_r = tr(M^r), r = 1..jmax.
  std::vector<double> power_sums(jmax + 1, 0.0);
  Matrix mp = Matrix::identity(n);
  for (std::size_t r = 1; r <= jmax; ++r) {
    mp = mp * m;
    power_sums[r] = mp.trace();
  }
  // Newton's identities: j e_j = sum_{r=1..j} (-1)^{r-1} e_{j-r} p_r.
  std::vector<double> e(jmax + 1, 0.0);
  e[0] = 1.0;
  for (std::size_t j = 1; j <= jmax; ++j) {
    double acc = 0.0;
    double sign = 1.0;
    for (std::size_t r = 1; r <= j; ++r) {
      acc += sign * e[j - r] * power_sums[r];
      sign = -sign;
    }
    e[j] = acc / static_cast<double>(j);
  }
  return e;
}

}  // namespace pardpp
