#include "sampling/session.h"

#include <string>

#include "sampling/sequential.h"

namespace pardpp {

SamplerSession::SamplerSession(const CountingOracle& base,
                               SessionOptions options)
    : base_(&base), options_(options) {
  if (options_.distill.enabled) {
    // The distillation plan is the whole point of the front end: an O(n)
    // pass over the ensemble diagonal instead of the full-n spectral
    // preprocessing, which is infeasible at the ground sizes this path
    // serves. The base oracle's caches stay cold.
    plan_ = std::make_unique<DistillationPlan>(base, options_.distill);
    return;
  }
  base_->prepare_concurrent();
}

std::unique_ptr<CommittedOracle> SamplerSession::make_state() const {
  return options_.use_commit ? base_->make_committed()
                             : make_condition_reference(*base_);
}

SampleResult SamplerSession::run(CommittedOracle& state,
                                 RandomStream& rng) const {
  // Draws dispatched onto pool workers must not fan out again (and the
  // nesting guard would degenerate them anyway): the round loops run on a
  // serial context, cross-sample concurrency being the session's axis.
  const ExecutionContext serial = ExecutionContext::serial();
  // The state's refresh counter is monotone across reset(); the delta
  // around one draw is that draw's eigensolve-fallback count.
  const std::size_t refreshes_before = state.spectral_refreshes();
  SampleResult result;
  switch (options_.kind) {
    case SamplerKind::kBatched:
      result = sample_batched_on(state, rng, serial, options_.batched);
      break;
    case SamplerKind::kEntropic:
      result = sample_entropic_on(state, rng, serial, options_.entropic);
      break;
    case SamplerKind::kSequential:
      result = sample_sequential_on(state, rng);
      break;
  }
  result.diag.spectral_refreshes =
      state.spectral_refreshes() - refreshes_before;
  return result;
}

SampleResult SamplerSession::draw_distilled(RandomStream& rng) const {
  // Fresh inner state per accepted pool: the restricted oracle lives only
  // for this draw, and use_commit picks the same commit-vs-reference
  // dispatch as the full-n path — with identical per-family protocols,
  // so the distilled bit-identity contract carries over.
  try {
    return plan_->draw(rng, [this](const CountingOracle& restricted,
                                   RandomStream& inner_rng) {
      const auto state = options_.use_commit
                             ? restricted.make_committed()
                             : make_condition_reference(restricted);
      return run(*state, inner_rng);
    });
  } catch (const DistillationStarvation& starved) {
    // Re-throw with the session context attached; the diagnostics struct
    // (attempts-at-failure in .proposals, duplicate_rejects, tail
    // counters) rides along unchanged for the caller's forensics.
    throw DistillationStarvation(
        std::string(starved.what()) + " [session: family " + base_->name() +
            ", kind " + sampler_kind_name(options_.kind) +
            (options_.use_commit ? ", commit path" : ", condition() reference") +
            "]",
        starved.diag);
  }
}

SampleResult SamplerSession::draw(RandomStream& rng) {
  if (plan_ != nullptr) return draw_distilled(rng);
  if (serial_state_ == nullptr) {
    serial_state_ = make_state();
  } else {
    serial_state_->reset();
  }
  return run(*serial_state_, rng);
}

std::vector<SampleResult> SamplerSession::draw_many(
    std::size_t count, RandomStream& rng, const ExecutionContext& ctx) {
  std::vector<SampleResult> out(count);
  const MachineStreams streams(rng);
  ctx.for_each_chunk(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        const auto state = plan_ != nullptr ? nullptr : make_state();
        for (std::size_t i = lo; i < hi; ++i) {
          RandomStream stream = streams.stream(i);
          if (plan_ != nullptr) {
            out[i] = draw_distilled(stream);
            continue;
          }
          if (i != lo) state->reset();
          out[i] = run(*state, stream);
        }
      },
      /*grain=*/1);
  return out;
}

}  // namespace pardpp
