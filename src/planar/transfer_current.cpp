#include "planar/transfer_current.h"

#include <cstddef>
#include <numeric>
#include <vector>

#include "linalg/cholesky.h"
#include "support/combinatorics.h"
#include "support/error.h"

namespace pardpp {

namespace {

void check_spanning_input(const PlanarGraph& g) {
  check_arg(g.num_vertices() >= 2,
            "transfer_current: need at least 2 vertices");
  check_arg(g.components().size() == 1,
            "transfer_current: graph must be connected");
}

/// Reduced Laplacian (ground vertex = last): L_r(i,i) = deg(i),
/// L_r(i,j) = -#edges(i,j), rows/cols restricted to the first |V|-1
/// vertices. Assembled directly from the edge list — positive definite
/// for connected graphs (matrix-tree theorem).
Matrix reduced_laplacian(const PlanarGraph& g) {
  const std::size_t r = g.num_vertices() - 1;
  Matrix lap(r, r);
  for (const auto& [u, v] : g.edges()) {
    const auto a = static_cast<std::size_t>(u);
    const auto b = static_cast<std::size_t>(v);
    if (a < r) lap(a, a) += 1.0;
    if (b < r) lap(b, b) += 1.0;
    if (a < r && b < r) {
      lap(a, b) -= 1.0;
      lap(b, a) -= 1.0;
    }
  }
  return lap;
}

/// Union-find over vertex ids; returns false when the edge closes a cycle.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  bool unite(int u, int v) {
    const std::size_t ru = find(static_cast<std::size_t>(u));
    const std::size_t rv = find(static_cast<std::size_t>(v));
    if (ru == rv) return false;
    parent_[ru] = rv;
    return true;
  }

 private:
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::vector<std::size_t> parent_;
};

}  // namespace

Matrix transfer_current_features(const PlanarGraph& g) {
  check_spanning_input(g);
  const std::size_t r = g.num_vertices() - 1;
  const CholeskyDecomposition chol =
      cholesky_or_throw(reduced_laplacian(g));
  const Matrix& lower = chol.lower();
  // Row e of F = B_r L⁻ᵀ is (L⁻¹ b_e)ᵀ: one forward substitution per
  // edge, seeded by the two (or one, when an endpoint is grounded)
  // nonzeros of the oriented incidence row.
  Matrix f(g.num_edges(), r);
  std::vector<double> y(r);
  std::size_t e = 0;
  for (const auto& [u, v] : g.edges()) {
    const auto a = static_cast<std::size_t>(u);
    const auto b = static_cast<std::size_t>(v);
    for (std::size_t i = 0; i < r; ++i) {
      double acc = (i == a ? 1.0 : 0.0) - (i == b ? 1.0 : 0.0);
      for (std::size_t j = 0; j < i; ++j) acc -= lower(i, j) * y[j];
      y[i] = acc / lower(i, i);
    }
    for (std::size_t i = 0; i < r; ++i) f(e, i) = y[i];
    ++e;
  }
  return f;
}

Matrix transfer_current_matrix(const PlanarGraph& g) {
  const Matrix f = transfer_current_features(g);
  return multiply_transposed_b(f, f);
}

double log_spanning_tree_count(const PlanarGraph& g) {
  check_spanning_input(g);
  return cholesky_or_throw(reduced_laplacian(g)).log_det();
}

FeatureKdppOracle spanning_tree_oracle(const PlanarGraph& g) {
  return {transfer_current_features(g), g.num_vertices() - 1};
}

std::vector<std::vector<int>> enumerate_spanning_trees(const PlanarGraph& g) {
  check_spanning_input(g);
  const auto edges = g.edges();
  const std::size_t k = g.num_vertices() - 1;
  std::vector<std::vector<int>> trees;
  for_each_subset(
      static_cast<int>(edges.size()), static_cast<int>(k),
      [&](std::span<const int> subset) {
        // k = |V|-1 acyclic edges span iff every union succeeds.
        DisjointSets sets(g.num_vertices());
        for (const int e : subset) {
          const auto& [u, v] = edges[static_cast<std::size_t>(e)];
          if (!sets.unite(u, v)) return;
        }
        trees.emplace_back(subset.begin(), subset.end());
      });
  return trees;
}

}  // namespace pardpp
