// pardpp sampling CLI — drive the library from the command line.
//
// Modes:
//   sample_cli kernel <csv> --k <k> [--sampler batched|sequential|entropic]
//       Samples a k-DPP from a dense kernel matrix stored as CSV rows.
//       The kernel is treated as symmetric if it is (numerically), else
//       as a nonsymmetric PSD ensemble.
//   sample_cli rbf <csv> --k <k> --bandwidth <w>
//       Treats CSV rows as points, builds the RBF kernel, samples.
//   sample_cli grid <rows> <cols>
//       Samples a uniform perfect matching (domino tiling) of a grid.
//   sample_cli serve [--serving key=value,...]
//       Daemon mode: speaks the length-prefixed request/response
//       protocol (serving/protocol.h) on stdin/stdout, serving sample/
//       stats/shutdown requests through the session registry with
//       request coalescing. --serving takes the canonical ServingConfig
//       text (serving/config.h). See README "Serving".
// Common flags: --seed <s>, --trials <t> (repeat and report marginals).
//
// Exit codes map the library's exception taxonomy so shell callers and
// service wrappers can branch on the failure class without parsing
// stderr (serve mode maps the same taxonomy onto per-response status
// codes instead and exits 0 on clean EOF/shutdown, 2 on an
// unrecoverable framing error):
//   0  success
//   1  usage error (bad flags, bad input shape)
//   2  other pardpp::Error / unexpected failure
//   3  pardpp::InvalidArgument     (a precondition the caller controls)
//   4  pardpp::NumericalError      (non-PSD kernel, pivot failure, drift)
//   5  pardpp::SamplingFailure     (rejection budget exhausted)
//   6  pardpp::DistillationStarvation (no candidate pool accepted;
//      stderr carries the attempts/duplicate-rejects forensics)
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

struct CliOptions {
  std::string mode;
  std::string path;
  std::size_t k = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  double bandwidth = 0.25;
  std::string sampler = "batched";
  std::uint64_t seed = 1;
  int trials = 1;
  std::string serving;  // canonical ServingConfig text for serve mode
};

/// The sampler kinds, straight from the enum table — the usage string
/// can never drift from what sampler_kind_from_name accepts.
std::string sampler_kind_list(const char* separator) {
  std::string kinds;
  for (const SamplerKind kind : kAllSamplerKinds) {
    if (!kinds.empty()) kinds += separator;
    kinds += sampler_kind_name(kind);
  }
  return kinds;
}

[[noreturn]] void usage() {
  const std::string kinds = sampler_kind_list("|");
  std::fprintf(
      stderr,
      "usage:\n"
      "  sample_cli kernel <csv> --k <k> [--sampler %s] [--seed s] "
      "[--trials t]\n"
      "  sample_cli rbf <csv> --k <k> [--bandwidth w] [--seed s] "
      "[--trials t]\n"
      "  sample_cli grid <rows> <cols> [--seed s] [--trials t]\n"
      "  sample_cli serve [--serving key=value,...]\n",
      kinds.c_str());
  std::exit(1);
}

Matrix load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    if (!rows.empty() && row.size() != rows.front().size()) {
      std::fprintf(stderr, "error: ragged CSV at line %zu\n", rows.size() + 1);
      std::exit(2);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: empty CSV\n");
    std::exit(2);
  }
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows[i].size(); ++j) m(i, j) = rows[i][j];
  return m;
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) usage();
  options.mode = argv[1];
  int positional_start = 2;
  if (options.mode == "grid") {
    if (argc < 4) usage();
    options.rows = static_cast<std::size_t>(std::stoul(argv[2]));
    options.cols = static_cast<std::size_t>(std::stoul(argv[3]));
    positional_start = 4;
  } else if (options.mode == "kernel" || options.mode == "rbf") {
    if (argc < 3) usage();
    options.path = argv[2];
    positional_start = 3;
  } else if (options.mode == "serve") {
    positional_start = 2;
  } else {
    usage();
  }
  for (int i = positional_start; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--k") {
      options.k = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--bandwidth") {
      options.bandwidth = std::stod(next());
    } else if (flag == "--sampler") {
      options.sampler = next();
    } else if (flag == "--seed") {
      options.seed = std::stoull(next());
    } else if (flag == "--trials") {
      options.trials = std::stoi(next());
    } else if (flag == "--serving") {
      options.serving = next();
    } else {
      usage();
    }
  }
  return options;
}

int run_dpp(const CliOptions& options, const Matrix& l) {
  if (options.k == 0 || options.k > l.rows()) {
    std::fprintf(stderr, "error: need 1 <= --k <= %zu\n", l.rows());
    return 1;
  }
  const std::optional<SamplerKind> requested =
      sampler_kind_from_name(options.sampler);
  if (!requested.has_value()) {
    std::fprintf(stderr, "error: unknown sampler %s (expected one of: %s)\n",
                 options.sampler.c_str(), sampler_kind_list(", ").c_str());
    return 1;
  }
  const bool symmetric = l.is_symmetric(1e-9);
  std::unique_ptr<CountingOracle> oracle;
  if (symmetric) {
    oracle = std::make_unique<SymmetricKdppOracle>(l, options.k);
  } else {
    oracle = std::make_unique<GeneralDppOracle>(l, options.k);
  }
  std::printf("# n = %zu, k = %zu, kernel = %s, sampler = %s\n", l.rows(),
              options.k, symmetric ? "symmetric" : "nonsymmetric",
              options.sampler.c_str());
  RandomStream rng(options.seed);
  std::vector<double> freq(l.rows(), 0.0);
  for (int trial = 0; trial < options.trials; ++trial) {
    PramLedger ledger;
    SampleResult result;
    // The nonsymmetric families route through the entropic sampler
    // (the batched cap assumes a strongly Rayleigh symmetric target);
    // an explicit sequential request is honored on every family.
    switch (*requested) {
      case SamplerKind::kSequential:
        result = sample_sequential(*oracle, rng, &ledger);
        break;
      case SamplerKind::kEntropic:
        result = sample_entropic(*oracle, rng, &ledger);
        break;
      case SamplerKind::kBatched:
        result = symmetric ? sample_batched(*oracle, rng, &ledger)
                           : sample_entropic(*oracle, rng, &ledger);
        break;
    }
    std::printf("sample %d (depth %.0f): ", trial,
                ledger.stats().depth);
    for (const int item : result.items) std::printf("%d ", item);
    std::printf("\n");
    for (const int item : result.items)
      freq[static_cast<std::size_t>(item)] += 1.0;
  }
  if (options.trials > 1) {
    std::printf("# empirical marginals:");
    for (std::size_t i = 0; i < l.rows(); ++i)
      std::printf(" %.3f", freq[i] / options.trials);
    std::printf("\n");
  }
  return 0;
}

std::string describe_exception(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// One `key=value` body line per stats counter, plus a
/// `session.<fingerprint>.*` block per resident session surfacing its
/// SessionHealth and nonzero per-kind GuardEvent counters.
std::string serve_stats_body(serving::SamplingServer& server) {
  const serving::ServerStats stats = server.stats();
  std::string body;
  const auto line = [&body](const std::string& key, std::uint64_t value) {
    body += key + "=" + std::to_string(value) + "\n";
  };
  line("submitted", stats.submitted);
  line("completed", stats.completed);
  line("failed", stats.failed);
  line("rejected_queue_full", stats.rejected_queue_full);
  line("rejected_tenant_cap", stats.rejected_tenant_cap);
  line("batches", stats.batches);
  line("coalesced_requests", stats.coalesced_requests);
  line("max_coalesced", stats.max_coalesced);
  line("draws", stats.draws);
  line("queue_peak", stats.queue_peak);
  line("registry.sessions", stats.registry.sessions);
  line("registry.resident_bytes", stats.registry.resident_bytes);
  line("registry.lookups", stats.registry.lookups);
  line("registry.hits", stats.registry.hits);
  line("registry.misses", stats.registry.misses);
  line("registry.evictions", stats.registry.evictions);
  line("registry.poisoned_replacements",
       stats.registry.poisoned_replacements);
  for (const auto& [fingerprint, session] : server.registry().snapshot()) {
    const std::string prefix = "session." + fingerprint.to_string() + ".";
    const SessionHealth health = session->session().health();
    line(prefix + "epoch", health.session_epoch);
    line(prefix + "draws", health.draws);
    line(prefix + "failures", health.failures);
    line(prefix + "retries", health.retries);
    line(prefix + "spectral_refreshes", health.spectral_refreshes);
    line(prefix + "starvations", health.starvations);
    line(prefix + "proposal_drifts", health.proposal_drifts);
    line(prefix + "poisoned", health.poisoned ? 1 : 0);
    const auto guards = session->guard_event_counts();
    for (std::size_t kind = 0; kind < guards.size(); ++kind) {
      if (guards[kind] == 0) continue;
      line(prefix + "guard." +
               guard_event_kind_name(static_cast<GuardEventKind>(kind)),
           guards[kind]);
    }
  }
  return body;
}

int run_serve(const CliOptions& options) {
  // Config parse/validate errors propagate to main's catch ladder: a bad
  // --serving string exits 3, same as any InvalidArgument.
  serving::SamplingServer server(
      serving::ServingConfig::parse(options.serving));

  // Replies must leave in request order, but requests are submitted the
  // moment they parse — so a client that pipelines N sample requests
  // before reading gets them coalesced into shared draw_many batches.
  // The deque keeps the order: a slot is either a submitted future, a
  // deferred stats marker (evaluated at reply time, after every earlier
  // request resolved), or an already-formatted error payload.
  struct Reply {
    std::optional<std::future<std::vector<SampleResult>>> future;
    bool is_stats = false;
    std::string ready;
  };
  std::deque<Reply> replies;
  bool shutdown_requested = false;

  const auto write_frame = [](const std::string& payload) {
    const std::string frame = serving::encode_frame(payload);
    std::fwrite(frame.data(), 1, frame.size(), stdout);
  };

  const auto flush_replies = [&] {
    for (Reply& reply : replies) {
      std::string payload;
      if (reply.future.has_value()) {
        try {
          const std::vector<SampleResult> results = reply.future->get();
          std::string body = "count=" + std::to_string(results.size()) + "\n";
          for (const SampleResult& result : results) {
            body += "sample=";
            for (std::size_t j = 0; j < result.items.size(); ++j) {
              if (j > 0) body += ' ';
              body += std::to_string(result.items[j]);
            }
            body += '\n';
          }
          payload = serving::format_response(serving::ResponseStatus::kOk,
                                             body);
        } catch (...) {
          const std::exception_ptr error = std::current_exception();
          payload = serving::format_response(
              serving::status_for_exception(error),
              "error=" + describe_exception(error) + "\n");
        }
      } else if (reply.is_stats) {
        payload = serving::format_response(serving::ResponseStatus::kOk,
                                           serve_stats_body(server));
      } else {
        payload = reply.ready;
      }
      write_frame(payload);
    }
    replies.clear();
    std::fflush(stdout);
  };

  serving::FrameReader reader;
  std::vector<char> chunk(std::size_t{1} << 16);
  for (;;) {
    // POSIX read, not fread: fread blocks until the whole chunk fills,
    // which would deadlock an interactive client that writes one frame
    // and waits for its response. read() returns whatever the pipe has,
    // so every client write becomes a flush boundary — pipelined writers
    // still coalesce (all frames of one chunk submit before any reply
    // is awaited), interactive writers still get per-frame replies.
#if defined(__unix__) || defined(__APPLE__)
    const ssize_t raw = ::read(0, chunk.data(), chunk.size());
    const std::size_t got = raw > 0 ? static_cast<std::size_t>(raw) : 0;
#else
    const std::size_t got =
        std::fread(chunk.data(), 1, chunk.size(), stdin);
#endif
    if (got == 0) break;  // EOF (or read error): drain and exit clean
    reader.feed(std::string_view(chunk.data(), got));
    for (;;) {
      std::optional<std::string> payload;
      try {
        payload = reader.next();
      } catch (const serving::ProtocolError& e) {
        // Oversize declared length: the byte stream cannot be resynced.
        // Answer what is answerable, report the framing error, bail.
        flush_replies();
        write_frame(serving::format_response(
            serving::ResponseStatus::kMalformed,
            std::string("error=") + e.what() + "\n"));
        std::fflush(stdout);
        std::fprintf(stderr, "serve: %s\n", e.what());
        return 2;
      }
      if (!payload.has_value()) break;
      Reply reply;
      try {
        const serving::Request request = serving::parse_request(*payload);
        if (const auto* sample =
                std::get_if<serving::SampleRequest>(&request)) {
          reply.future = server.submit(serving::make_server_request(*sample));
        } else if (std::holds_alternative<serving::StatsRequest>(request)) {
          reply.is_stats = true;
        } else {
          reply.ready = serving::format_response(
              serving::ResponseStatus::kOk, "shutdown=1\n");
          shutdown_requested = true;
        }
      } catch (...) {
        // ProtocolError → 1, InvalidArgument → 3, Overloaded → 7: the
        // request failed before it reached a session; the connection
        // stays healthy.
        const std::exception_ptr error = std::current_exception();
        reply.ready = serving::format_response(
            serving::status_for_exception(error),
            "error=" + describe_exception(error) + "\n");
      }
      replies.push_back(std::move(reply));
      if (shutdown_requested) break;
    }
    flush_replies();
    if (shutdown_requested) break;
  }
  flush_replies();
  if (!shutdown_requested && reader.pending() != 0) {
    std::fprintf(stderr, "serve: EOF with %zu byte(s) of a truncated frame\n",
                 reader.pending());
  }
  return 0;
}

int run_grid(const CliOptions& options) {
  const auto g = grid_graph(options.rows, options.cols);
  RandomStream rng(options.seed);
  std::printf("# grid %zux%zu, uniform perfect matchings via Theorem 11\n",
              options.rows, options.cols);
  for (int trial = 0; trial < options.trials; ++trial) {
    PramLedger ledger;
    const auto result = sample_matching_separator(g, rng, &ledger);
    std::printf("matching %d (depth %.0f):", trial, ledger.stats().depth);
    for (const auto& [u, v] : result.matching)
      std::printf(" (%d,%d)", u, v);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse(argc, argv);
  try {
    if (options.mode == "grid") return run_grid(options);
    if (options.mode == "serve") return run_serve(options);
    Matrix m = load_csv(options.path);
    if (options.mode == "rbf") {
      m = rbf_kernel(m, options.bandwidth);
      for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += 1e-9;
    }
    if (!m.square()) {
      std::fprintf(stderr, "error: kernel CSV must be square\n");
      return 1;
    }
    return run_dpp(options, m);
  } catch (const DistillationStarvation& e) {
    // Most-derived first: starvation is a SamplingFailure with a
    // diagnostics payload worth surfacing.
    std::fprintf(stderr,
                 "pardpp starvation: %s\n"
                 "  attempts=%zu duplicate_rejects=%zu tail_candidates=%zu\n",
                 e.what(), e.diag.proposals, e.diag.duplicate_rejects,
                 e.diag.tail_candidates);
    return 6;
  } catch (const SamplingFailure& e) {
    std::fprintf(stderr, "pardpp sampling failure: %s\n", e.what());
    return 5;
  } catch (const NumericalError& e) {
    std::fprintf(stderr, "pardpp numerical error: %s\n", e.what());
    return 4;
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "pardpp invalid argument: %s\n", e.what());
    return 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "pardpp error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unexpected error: %s\n", e.what());
    return 2;
  }
}
