// LU decomposition with partial pivoting, templated over real and complex
// scalars.
//
// This is the workhorse behind every determinant-based counting oracle in
// the library: log-determinants of (I + zL) at complex interpolation nodes,
// Schur-complement conditioning, marginal-kernel computation, and matrix
// inversion all reduce to it. Determinants are reported in log-magnitude +
// phase form so partition functions never overflow.
#pragma once

#include <cmath>
#include <complex>
#include <vector>

#include "linalg/matrix.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

/// Result of a pivoted LU factorization P*A = L*U (Doolittle, unit lower
/// triangle stored below the diagonal of `lu`).
template <typename T>
class LuDecomposition {
 public:
  LuDecomposition(BasicMatrix<T> packed, std::vector<int> pivots,
                  int permutation_sign, bool singular)
      : lu_(std::move(packed)),
        pivots_(std::move(pivots)),
        permutation_sign_(permutation_sign),
        singular_(singular) {}

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }
  [[nodiscard]] bool singular() const noexcept { return singular_; }

  /// log |det A|; -inf when singular.
  [[nodiscard]] double log_abs_det() const {
    if (singular_) return kNegInf;
    double acc = 0.0;
    for (std::size_t i = 0; i < size(); ++i)
      acc += std::log(std::abs(lu_(i, i)));
    return acc;
  }

  /// det A / |det A| as a complex phase (for real T this is ±1); 0 when
  /// singular.
  [[nodiscard]] std::complex<double> det_phase() const {
    if (singular_) return {0.0, 0.0};
    std::complex<double> phase(static_cast<double>(permutation_sign_), 0.0);
    for (std::size_t i = 0; i < size(); ++i) {
      const std::complex<double> d(lu_(i, i));
      const double mag = std::abs(d);
      if (mag == 0.0) return {0.0, 0.0};
      phase *= d / mag;
    }
    return phase;
  }

  /// Determinant in the form value = phase * exp(log_abs); avoids overflow.
  struct LogDet {
    double log_abs = kNegInf;
    std::complex<double> phase{0.0, 0.0};
  };
  [[nodiscard]] LogDet log_det() const { return {log_abs_det(), det_phase()}; }

  /// Solves A x = b in place.
  void solve_in_place(std::vector<T>& b) const {
    check_arg(b.size() == size(), "lu solve: size mismatch");
    check_numeric(!singular_, "lu solve: singular matrix");
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      std::swap(b[i], b[static_cast<std::size_t>(pivots_[i])]);
    }
    for (std::size_t i = 1; i < n; ++i) {
      T acc = b[i];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * b[j];
      b[i] = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = b[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * b[j];
      b[ii] = acc / lu_(ii, ii);
    }
  }

  [[nodiscard]] std::vector<T> solve(std::vector<T> b) const {
    solve_in_place(b);
    return b;
  }

  /// Solves A X = B column by column.
  [[nodiscard]] BasicMatrix<T> solve_matrix(const BasicMatrix<T>& b) const {
    check_arg(b.rows() == size(), "lu solve_matrix: size mismatch");
    BasicMatrix<T> x(b.rows(), b.cols());
    std::vector<T> col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      solve_in_place(col);
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
    }
    return x;
  }

  /// A^{-1} (dense).
  [[nodiscard]] BasicMatrix<T> inverse() const {
    return solve_matrix(BasicMatrix<T>::identity(size()));
  }

 private:
  BasicMatrix<T> lu_;
  std::vector<int> pivots_;
  int permutation_sign_;
  bool singular_;
};

/// Factors a square matrix with partial (row) pivoting. Never throws on
/// singular input; the result reports `singular()` instead, because the
/// counting oracles legitimately meet zero determinants (events of
/// probability zero).
template <typename T>
[[nodiscard]] LuDecomposition<T> lu_factor(BasicMatrix<T> a,
                                           double tiny = 1e-300) {
  check_arg(a.square(), "lu_factor: matrix not square");
  const std::size_t n = a.rows();
  std::vector<int> pivots(n);
  int sign = 1;
  bool singular = false;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude on/below the diagonal.
    std::size_t best = col;
    double best_mag = std::abs(a(col, col));
    for (std::size_t i = col + 1; i < n; ++i) {
      const double mag = std::abs(a(i, col));
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    pivots[col] = static_cast<int>(best);
    if (best != col) {
      sign = -sign;
      auto r0 = a.row(col);
      auto r1 = a.row(best);
      for (std::size_t j = 0; j < n; ++j) std::swap(r0[j], r1[j]);
    }
    const T pivot = a(col, col);
    if (best_mag <= tiny) {
      singular = true;
      continue;
    }
    for (std::size_t i = col + 1; i < n; ++i) {
      const T factor = a(i, col) / pivot;
      a(i, col) = factor;
      if (factor == T{}) continue;
      const auto src = a.row(col);
      auto dst = a.row(i);
      for (std::size_t j = col + 1; j < n; ++j) dst[j] -= factor * src[j];
    }
  }
  return LuDecomposition<T>(std::move(a), std::move(pivots), sign, singular);
}

/// Convenience: log|det A| and sign for a real matrix.
struct SignedLogDet {
  double log_abs = kNegInf;
  int sign = 0;  ///< -1, 0, +1
};

[[nodiscard]] inline SignedLogDet signed_log_det(const Matrix& a) {
  const auto lu = lu_factor(a);
  if (lu.singular()) return {kNegInf, 0};
  const auto phase = lu.det_phase();
  return {lu.log_abs_det(), phase.real() >= 0.0 ? 1 : -1};
}

/// Plain determinant of a small real matrix (overflow is the caller's
/// responsibility; intended for t x t blocks).
[[nodiscard]] inline double det_small(const Matrix& a) {
  const auto sld = signed_log_det(a);
  if (sld.sign == 0) return 0.0;
  return sld.sign * std::exp(sld.log_abs);
}

}  // namespace pardpp
