#include "dpp/subdivision.h"

#include <cmath>

#include "support/logsum.h"

namespace pardpp {

SubdividedOracle::SubdividedOracle(std::unique_ptr<CountingOracle> base,
                                   double beta)
    : base_(std::move(base)), beta_(beta) {
  check_arg(base_ != nullptr, "SubdividedOracle: null base");
  check_arg(beta_ > 0.0 && beta_ <= 1.0, "SubdividedOracle: beta in (0,1]");
  base_marginals_ = base_->marginals();
  const auto n = static_cast<double>(base_->ground_size());
  const auto k = static_cast<double>(base_->sample_size());
  copies_.resize(base_->ground_size());
  for (std::size_t i = 0; i < copies_.size(); ++i) {
    // t_i = ceil(n p_i / (beta k)), at least one copy per element.
    const double t = k > 0.0
                         ? std::ceil(n * base_marginals_[i] / (beta_ * k))
                         : 1.0;
    copies_[i] = std::max(1, static_cast<int>(t));
    for (int c = 0; c < copies_[i]; ++c)
      origin_.push_back(static_cast<int>(i));
  }
}

double SubdividedOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > sample_size()) return kNegInf;
  if (t.empty()) return 0.0;
  std::vector<int> originals;
  originals.reserve(t.size());
  double log_copy_factor = 0.0;
  for (const int c : t) {
    check_arg(c >= 0 && static_cast<std::size_t>(c) < origin_.size(),
              "SubdividedOracle: copy index out of range");
    const int base_idx = origin_[static_cast<std::size_t>(c)];
    if (base_idx < 0) return kNegInf;  // dead copy
    for (const int other : originals) {
      if (other == base_idx) return kNegInf;  // two copies of one original
    }
    originals.push_back(base_idx);
    log_copy_factor -=
        std::log(static_cast<double>(copies_[static_cast<std::size_t>(base_idx)]));
  }
  return base_->log_joint_marginal(originals) + log_copy_factor;
}

std::vector<double> SubdividedOracle::marginals() const {
  std::vector<double> p(origin_.size(), 0.0);
  for (std::size_t c = 0; c < origin_.size(); ++c) {
    const int base_idx = origin_[c];
    if (base_idx < 0) continue;
    p[c] = base_marginals_[static_cast<std::size_t>(base_idx)] /
           static_cast<double>(copies_[static_cast<std::size_t>(base_idx)]);
  }
  return p;
}

std::unique_ptr<CountingOracle> SubdividedOracle::condition(
    std::span<const int> t) const {
  // Condition the base on the distinct originals behind T, drop the
  // conditioned copies from the ground set, and mark sibling copies dead.
  std::vector<int> originals;
  for (const int c : t) {
    check_arg(c >= 0 && static_cast<std::size_t>(c) < origin_.size(),
              "SubdividedOracle: copy index out of range");
    const int base_idx = origin_[static_cast<std::size_t>(c)];
    check_arg(base_idx >= 0, "SubdividedOracle: conditioning on a dead copy");
    for (const int other : originals)
      check_arg(other != base_idx,
                "SubdividedOracle: conditioning on two copies of one element");
    originals.push_back(base_idx);
  }
  auto out = std::unique_ptr<SubdividedOracle>(new SubdividedOracle());
  out->base_ = base_->condition(originals);
  out->beta_ = beta_;
  out->base_marginals_ = out->base_->marginals();

  // Base re-indexing: originals removed, order preserved.
  std::vector<int> base_remap(base_->ground_size(), -1);
  {
    std::vector<bool> removed(base_->ground_size(), false);
    for (const int b : originals) removed[static_cast<std::size_t>(b)] = true;
    int next = 0;
    for (std::size_t b = 0; b < base_remap.size(); ++b) {
      if (!removed[b]) base_remap[b] = next++;
    }
  }
  std::vector<bool> drop_copy(origin_.size(), false);
  for (const int c : t) drop_copy[static_cast<std::size_t>(c)] = true;

  out->copies_.assign(out->base_->ground_size(), 0);
  out->origin_.clear();
  for (std::size_t c = 0; c < origin_.size(); ++c) {
    if (drop_copy[c]) continue;  // removed from the ground set
    const int base_idx = origin_[c];
    const int mapped = base_idx >= 0 ? base_remap[static_cast<std::size_t>(base_idx)] : -1;
    out->origin_.push_back(mapped);
    if (mapped >= 0) ++out->copies_[static_cast<std::size_t>(mapped)];
  }
  // Elements whose copies all died keep copies_ = 0; they never appear as
  // origins so the zero count is never dereferenced.
  for (auto& c : out->copies_) c = std::max(c, 1);
  return out;
}

std::unique_ptr<CountingOracle> SubdividedOracle::clone() const {
  auto out = std::unique_ptr<SubdividedOracle>(new SubdividedOracle());
  out->base_ = base_->clone();
  out->beta_ = beta_;
  out->origin_ = origin_;
  out->copies_ = copies_;
  out->base_marginals_ = base_marginals_;
  return out;
}

}  // namespace pardpp
