// Intermediate sampling (distillation) front end — exact draws whose
// per-draw cost is independent of the ground-set size n (DESIGN.md §2
// convention 8; Anari–Liu–Vuong 2204.02570, Barthelmé–Tremblay–Amblard
// 2210.17358).
//
// The exact samplers pay O(n)-and-worse preprocessing per conditional
// round, which caps practical n at a few thousand. Distillation first
// i.i.d.-downsamples a small candidate pool under per-item weight
// over-estimates read off the ensemble diagonal, runs the existing exact
// sampler on the weight-rescaled restriction to the pool, and
// accepts/rejects on the restricted partition function — and the output
// law is *exactly* the target k-DPP:
//
//   Draw m candidates c_1..c_m i.i.d. ~ q, q_i = w_i / τ (w = ensemble
//   diagonal, τ = Σw), and restrict the ensemble to the c_j with row
//   scales s_j = sqrt(τ / (m w_{c_j})) — so every diagonal entry of the
//   restricted ensemble is exactly τ/m and its trace is exactly τ.
//   Accept the pool with probability Z(C)/M, where Z(C) = e_k(restricted
//   spectrum) and M = C(r,k)(τ/r)^k with r = min(rank_bound, m): by
//   Maclaurin's inequality e_k of any PSD spectrum with at most r nonzero
//   values summing to τ is at most M, so the ratio is a probability for
//   EVERY pool — that is what makes the scheme exact rather than
//   approximate. On acceptance, sample positions J from the restricted
//   k-DPP (law ∝ det of the restricted ensemble block) and output
//   {c_j : j ∈ J}. Marginalizing over pools, the probability of emitting
//   a fixed size-k set S factorizes —
//     P(S) = (1/M) E_C[ Σ_J 1{c_J ≅ S} det(L̃_J) ]
//          = (m!/((m-k)! m^k)) det(L_S) / M  ∝  det(L_S)
//   — because each ordered injection of S into the pool contributes
//   Π_{i∈S} q_i from the proposal times Π_{i∈S} τ/(m w_i) from the row
//   scales, which cancels to m^{-k} independently of S; repeated items
//   yield parallel rows (det 0), so collisions never emit an invalid set.
//   Rejected pools are redrawn, which leaves the conditional law
//   untouched. The acceptance rate is (Π_{j<k}(1 - j/m)) · Z/M: the
//   first factor is the position-collision mass (Ω(1) once m ≳ k²), the
//   second how far the spectrum is from the uniform one Maclaurin is
//   tight on.
//
// Determinism protocol (a per-plan invariant, like the commit path's
// draw protocols): one attempt consumes exactly m+1 uniforms — m
// candidate draws in pool order, then one acceptance uniform (consumed
// even when Z(C) = 0 forces rejection) — and the inner sampler consumes
// its own family protocol only on the accepted pool. Everything is drawn
// from the caller's stream, so SamplerSession's per-draw stream forking
// makes distilled draws bit-reproducible at every pool size.
//
// Persistent sparsified proposal (DESIGN.md §2 convention 11): the
// per-draw-pool path maps each candidate uniform through an inverse-CDF
// binary search over the full-n cumulative table — O(log n) probes per
// candidate, each a cache miss at n = 10⁶. With
// `DistillOptions::persistent_proposal` the plan materializes, once at
// session-prime time, a reusable sparsified domain D of the
// ~k·polylog(n) heaviest items with a Walker/Vose alias table over it,
// and a compacted cumulative table over the tail [n] \ D. Each candidate
// still consumes exactly one uniform u: the interval [0, 1) is split at
// p_D = w(D)/τ, an in-domain u is rescaled into the O(1) alias lookup
// (working set ~k·polylog(n), cache-resident across draws), and a tail u
// falls back to the exact full-n-cost inverse-CDF path over the
// compacted table. The per-candidate law is exactly q either way, so the
// exactness proof above applies verbatim; only the uniform→candidate
// *mapping* differs from the per-draw-pool protocol (the two modes draw
// different — identically distributed — samples from one seed). A cheap
// refresh rule re-validates the domain against the Maclaurin bound
// (mass resum + bound recomputation, O(|D|)) every `refresh_interval`
// pools and immediately for any rare heavy-tail pool (more tail
// candidates than `tail_budget()`), so a profile drifting under the
// plan (the dynamic-kernel hook) is caught instead of silently biasing
// the acceptance bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "distributions/oracle.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct DistillOptions {
  /// Routes SamplerSession draws through the distillation front end.
  bool enabled = false;
  /// Candidate-pool size m (0 = auto: max(64, 4k²), the point where the
  /// position-collision factor Π(1 - j/m) stays above ~7/8).
  std::size_t candidate_budget = 0;
  /// Candidate pools proposed per draw before SamplingFailure. The
  /// acceptance rate is ensemble-dependent (near 1 for flat spectra); a
  /// run hitting this bound signals a spectrum distillation fits badly.
  std::size_t max_attempts = 100000;
  /// Opt-in persistent sparsified proposal (DESIGN.md §2 convention 11):
  /// candidate draws go through an alias table over the sparsified
  /// domain instead of the full-n binary search. Same output law, a
  /// different (documented) uniform→candidate mapping.
  bool persistent_proposal = false;
  /// Sparsified-domain size |D| (0 = auto: max(m, k·⌈log₂n⌉²), clamped
  /// to the number of positive-weight items).
  std::size_t sparsified_domain = 0;
  /// Pools between periodic domain re-validations on the persistent
  /// path (heavy-tail pools additionally re-validate immediately).
  std::size_t refresh_interval = 4096;

  /// Throws InvalidArgument naming the offending field. `k` is the
  /// target sample size when known (0 skips the k-relative checks): a
  /// candidate budget or sparsified domain below k can never seat k
  /// distinct items, which today surfaces as guaranteed starvation deep
  /// inside a draw. Called by DistillationPlan's constructor and by
  /// SessionOptions::validate.
  void validate(std::size_t k = 0) const;
};

/// Carries the forensic trail of a distillation run that exhausted
/// max_attempts: `diag.proposals` holds the attempts consumed,
/// `diag.duplicate_rejects` the roundoff-promoted duplicate selections,
/// and the persistent-proposal counters ride along — the acceptance-rate
/// starvation evidence the plain what() string used to discard.
class DistillationStarvation : public SamplingFailure {
 public:
  DistillationStarvation(const std::string& message, SampleDiagnostics diag)
      : SamplingFailure(message), diag(diag) {}

  SampleDiagnostics diag;
};

/// Thrown by `revalidate_domain()` when the persistent sparsified
/// proposal's cached masses or acceptance bound no longer match the
/// authoritative full-n table — the profile mutated under the plan.
/// Distinguished from a generic NumericalError because it indicts the
/// *shared* plan, not one draw: every future draw through the same plan
/// will fail the same way, so SamplerSession treats an unrecovered drift
/// as poisoning (DESIGN.md §2 convention 12) while a per-draw numerical
/// failure only burns that draw's retry budget.
class ProposalDriftError : public NumericalError {
 public:
  using NumericalError::NumericalError;
};

/// The distillation plan for one base oracle: proposal weights, their
/// cumulative table, the Maclaurin acceptance bound, and (opt-in) the
/// persistent sparsified-proposal tables, computed once at session-prime
/// time in O(n) from the oracle's DistillationProfile — never forcing
/// the full-n spectral caches. The proposal tables are immutable after
/// construction; concurrent draws share them read-only (the refresh-rule
/// counters are relaxed atomics).
class DistillationPlan {
 public:
  /// Runs the exact sampler on one accepted restricted oracle,
  /// consuming the draw's stream (SamplerSession passes its kind +
  /// commit/reference dispatch).
  using InnerSampler =
      std::function<SampleResult(const CountingOracle&, RandomStream&)>;

  /// Lifetime counters of the persistent proposal (zero when the mode is
  /// off). `heavy_tail_pools` counts pools whose tail-candidate count
  /// exceeded tail_budget(); each such pool triggered a re-validation.
  struct ProposalStats {
    std::uint64_t pools = 0;
    std::uint64_t tail_candidates = 0;
    std::uint64_t heavy_tail_pools = 0;
    std::uint64_t refreshes = 0;
  };

  /// Per-pool proposal outcome, for callers that fold the counters into
  /// per-draw diagnostics (DistillationPlan::draw does).
  struct PoolStats {
    std::size_t tail_candidates = 0;
    bool heavy_tail = false;
  };

  /// Throws InvalidArgument when the oracle's family does not support
  /// distillation (empty profile).
  DistillationPlan(const CountingOracle& base, DistillOptions options);

  /// One exact draw: propose pools until acceptance, run `inner` on the
  /// accepted restriction, map positions back to ground-set ids.
  /// Diagnostics: proposals = pools proposed, accepted_batches = 1,
  /// plus the inner run's counters and the persistent-proposal tail
  /// counters. Throws DistillationStarvation (diagnostics attached)
  /// after max_attempts rejected pools.
  [[nodiscard]] SampleResult draw(RandomStream& rng,
                                  const InnerSampler& inner) const;

  [[nodiscard]] std::size_t candidate_budget() const noexcept { return m_; }
  /// log M — the Maclaurin bound every restricted log-partition is
  /// compared against (tests assert log Z(C) <= log M on fuzzed pools).
  [[nodiscard]] double log_accept_bound() const noexcept { return log_m_; }

  /// Draws one candidate pool + its row scales (appended to the cleared
  /// outputs; exactly m_ uniforms) and builds the restricted oracle.
  /// Exposed for the fuzz tests; draw() is the sampling entry point.
  /// Rejects k = 0 plans (no pool exists; draw() no-ops instead).
  /// `pool_stats`, when non-null, receives this pool's tail counters.
  [[nodiscard]] std::unique_ptr<CountingOracle> propose(
      RandomStream& rng, std::vector<int>& items,
      std::vector<double>& scales, PoolStats* pool_stats = nullptr) const;

  /// Inverse-CDF candidate lookup over the full-n cumulative table for
  /// target ∈ [0, τ]. The `target == τ` roundoff fallback clamps to the
  /// last *positive-weight* index — never to a trailing zero-weight item,
  /// whose row scale of 0 would inject a null row the proposal law
  /// assigns probability zero. Exposed for the regression tests.
  [[nodiscard]] std::size_t candidate_index(double target) const;

  // ---- persistent sparsified proposal (convention 11) ----

  [[nodiscard]] bool persistent() const noexcept {
    return options_.persistent_proposal;
  }
  /// |D| — number of items the alias table covers (0 when the mode is
  /// off or k = 0).
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return domain_items_.size();
  }
  /// p_D = w(D)/τ — the fraction of candidate mass served by the O(1)
  /// alias path; 1 - p_D is the per-candidate tail-fallback rate.
  [[nodiscard]] double domain_mass_fraction() const noexcept {
    return p_domain_;
  }
  /// Tail candidates per pool above which the pool is classed
  /// heavy-tail and triggers an immediate re-validation.
  [[nodiscard]] std::size_t tail_budget() const noexcept {
    return tail_budget_;
  }
  [[nodiscard]] ProposalStats proposal_stats() const noexcept;

  /// The refresh rule's re-validation: resums the domain and tail masses
  /// from the authoritative full-n table and recomputes the Maclaurin
  /// bound, throwing ProposalDriftError if either drifted from the cached
  /// values the alias fast path relies on — the guard that a profile
  /// mutating under the plan (item churn) degrades loudly into a
  /// rebuild instead of silently biasing the acceptance bound. O(|D| +
  /// |tail|) resum, O(1) bound check; no-op when the mode is off.
  void revalidate_domain() const;

 private:
  [[nodiscard]] std::size_t propose_candidate_persistent(
      double u, std::size_t& tail_hits) const;
  void build_persistent_tables();

  const CountingOracle* base_;
  DistillOptions options_;
  std::size_t k_;
  std::size_t m_;                    // candidate-pool size
  std::size_t rank_r_ = 0;           // clamped rank bound r behind M
  double log_m_;                     // log Maclaurin bound M
  std::vector<double> cumulative_;   // prefix sums of the weights
  std::vector<double> row_scale_;    // sqrt(tau / (m w_i)) per item
  std::size_t last_positive_ = 0;    // last index with w_i > 0

  // Persistent sparsified proposal (empty when the mode is off):
  // domain_items_ holds |D| item ids in descending-weight order;
  // cell c of the one-uniform alias table keeps domain_items_[c] when
  // the cell fraction is below alias_prob_[c], else
  // domain_items_[alias_other_[c]]. tail_items_ (ascending ids) and
  // tail_cumulative_ form the compacted exact fallback table.
  std::vector<int> domain_items_;
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_other_;
  std::vector<int> tail_items_;
  std::vector<double> tail_cumulative_;
  double domain_mass_ = 0.0;
  double tail_mass_ = 0.0;
  double p_domain_ = 1.0;
  std::size_t tail_budget_ = 0;

  mutable std::atomic<std::uint64_t> pools_{0};
  mutable std::atomic<std::uint64_t> tail_candidates_{0};
  mutable std::atomic<std::uint64_t> heavy_tail_pools_{0};
  mutable std::atomic<std::uint64_t> refreshes_{0};
};

}  // namespace pardpp
