// Isotropic transformation by subdivision (Definition 30, Prop. 32).
//
// Given mu on ([n] choose k) with marginals p_i, element i is split into
// t_i = ceil(n p_i / (beta k)) copies; a sample of mu_iso is a sample of
// mu with a uniformly random copy chosen per element. The transformation
// flattens the marginal profile (Prop. 32 bounds) while preserving
// entropic independence (Prop. 31), which is what the concentration proof
// of Theorem 29 needs.
//
// Implemented as a *wrapper* around an arbitrary counting oracle: the
// subdivided oracle's queries reduce exactly to base queries —
//   P_iso[i^(j) ∈ S]       = p_i / t_i,
//   P_iso[T' ⊆ S]          = P[originals(T') ⊆ S] / prod t  (distinct
//                            originals; 0 when T' hits one original twice),
// and conditioning on a copy conditions the base on its original while the
// sibling copies stay in the ground set with marginal zero. This covers
// every family (determinantal or not) with no kernel expansion.
#pragma once

#include <memory>

#include "distributions/oracle.h"

namespace pardpp {

class SubdividedOracle final : public CountingOracle {
 public:
  /// Wraps `base` with subdivision parameter `beta` in (0, 1]; smaller
  /// beta means more copies and flatter marginals (the theory takes
  /// sqrt(beta) = eps/(32 k); practice is fine with beta near 1 — see
  /// EXPERIMENTS.md).
  SubdividedOracle(std::unique_ptr<CountingOracle> base, double beta);

  [[nodiscard]] std::size_t ground_size() const override {
    return origin_.size();
  }
  [[nodiscard]] std::size_t sample_size() const override {
    return base_->sample_size();
  }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override {
    return "subdivided(" + base_->name() + ")";
  }
  void prepare_concurrent() const override { base_->prepare_concurrent(); }

  /// Base element (current base indexing) behind copy `c`; -1 for dead
  /// copies (their original was conditioned away through a sibling).
  [[nodiscard]] int origin_of(int c) const {
    return origin_[static_cast<std::size_t>(c)];
  }

  /// Copies per current base element.
  [[nodiscard]] std::span<const int> copy_counts() const { return copies_; }

  [[nodiscard]] const CountingOracle& base() const { return *base_; }

 private:
  SubdividedOracle() = default;

  std::unique_ptr<CountingOracle> base_;
  double beta_ = 1.0;
  std::vector<int> origin_;          // copy -> base index or -1 (dead)
  std::vector<int> copies_;          // base index -> t_i
  std::vector<double> base_marginals_;
};

}  // namespace pardpp
