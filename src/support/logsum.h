// Log-domain arithmetic.
//
// Counting oracles for determinantal distributions produce quantities that
// overflow `double` long before the interesting problem sizes are reached
// (partition functions are products of n eigenvalue factors). Every count,
// probability mass and acceptance ratio in pardpp is therefore carried as a
// natural logarithm; this header provides the small set of primitives used
// to combine them.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace pardpp {

/// log(0): the additive identity of log-domain accumulation.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Elementwise log of a probability vector, with exact kNegInf for zero
/// entries — the shared derivation of every oracle's singleton
/// log-marginal cache (the p_i = 0 convention must not drift between the
/// base oracles and their commit-path states).
[[nodiscard]] inline std::vector<double> log_probabilities(
    std::span<const double> p) {
  std::vector<double> lp(p.size(), kNegInf);
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] > 0.0) lp[i] = std::log(p[i]);
  return lp;
}

/// Returns log(exp(a) + exp(b)) without leaving the log domain.
[[nodiscard]] inline double log_add(double a, double b) noexcept {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

/// Returns log(exp(a) - exp(b)); requires a >= b. Returns kNegInf when the
/// difference underflows (a == b up to rounding).
[[nodiscard]] inline double log_sub(double a, double b) noexcept {
  if (b == kNegInf) return a;
  if (a <= b) return kNegInf;
  return a + std::log1p(-std::exp(b - a));
}

/// Returns log(sum_i exp(values[i])) with a single pass for the maximum and
/// one for the sum, the standard numerically stable evaluation.
[[nodiscard]] inline double logsumexp(std::span<const double> values) noexcept {
  double hi = kNegInf;
  for (const double v : values) hi = std::max(hi, v);
  if (hi == kNegInf) return kNegInf;
  double acc = 0.0;
  for (const double v : values) acc += std::exp(v - hi);
  return hi + std::log(acc);
}

/// exp with clamping: values above `cap` saturate instead of overflowing.
[[nodiscard]] inline double exp_clamped(double log_value,
                                        double cap = 1e300) noexcept {
  if (log_value == kNegInf) return 0.0;
  const double v = std::exp(std::min(log_value, 690.0));
  return std::min(v, cap);
}

}  // namespace pardpp
