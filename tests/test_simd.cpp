// Tests of the runtime-dispatched SIMD microkernel layer (linalg/simd.h,
// DESIGN.md §2 convention 10): the PARDPP_SIMD resolution contract, the
// scalar-vs-AVX2 agreement fuzz across shapes, alignments, and ragged
// tails, the 64-byte Matrix alignment guarantee, and the bit-identity
// contracts that route through the dispatched kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/factory.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "support/random.h"

namespace pardpp {
namespace {

using simd::KernelTable;
using simd::Path;

// Relative agreement tolerance between the two arms. The arms sum the
// same products in different fixed orders, so they agree to rounding
// accumulation, not bitwise.
constexpr double kArmTol = 1e-10;

double rel_diff(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) / scale;
}

std::vector<double> random_buffer(std::size_t n, RandomStream& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(SimdDispatch, ResolvePathContract) {
  const bool usable = simd::avx2_compiled() && simd::avx2_supported();
  // "scalar" always forces the portable arm.
  EXPECT_EQ(simd::resolve_path("scalar"), Path::kScalar);
  // "avx2" selects the AVX2 arm only when it can actually run.
  EXPECT_EQ(simd::resolve_path("avx2"),
            usable ? Path::kAvx2 : Path::kScalar);
  // Unset and "auto" pick the best supported arm.
  const Path best = usable ? Path::kAvx2 : Path::kScalar;
  EXPECT_EQ(simd::resolve_path(nullptr), best);
  EXPECT_EQ(simd::resolve_path("auto"), best);
  // A typo must never select an arm the host cannot execute.
  EXPECT_EQ(simd::resolve_path("avx512-typo"), best);
  EXPECT_EQ(simd::resolve_path(""), best);
}

TEST(SimdDispatch, ActivePathHonorsEnvironment) {
  // Whatever PARDPP_SIMD says (including the CI leg that forces
  // "scalar"), the latched path must equal the pure resolution of it.
  EXPECT_EQ(simd::active_path(),
            simd::resolve_path(std::getenv("PARDPP_SIMD")));
  const char* name = simd::path_name();
  EXPECT_TRUE(simd::active_path() == Path::kAvx2 ? name == std::string("avx2")
                                                 : name == std::string("scalar"));
}

TEST(SimdDispatch, KernelTableArms) {
  EXPECT_EQ(simd::kernel_table(Path::kScalar).path, Path::kScalar);
  const bool usable = simd::avx2_compiled() && simd::avx2_supported();
  EXPECT_EQ(simd::kernel_table(Path::kAvx2).path,
            usable ? Path::kAvx2 : Path::kScalar);
}

TEST(SimdDispatch, ScopedOverrideForcesAndRestores) {
  const Path before = simd::active_path();
  {
    simd::ScopedPathOverride force_scalar(Path::kScalar);
    EXPECT_EQ(simd::active_path(), Path::kScalar);
    const double a[3] = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(simd::dot(a, a, 3), 14.0);
  }
  EXPECT_EQ(simd::active_path(), before);
}

// Cross-arm fuzz of the vector primitives over ragged sizes and all
// eight 8-byte misalignments. On hosts without a usable AVX2 arm the two
// tables coincide and the comparisons are trivially exact.
TEST(SimdFuzz, VectorKernelsAgreeAcrossArms) {
  const KernelTable& s = simd::kernel_table(Path::kScalar);
  const KernelTable& v = simd::kernel_table(Path::kAvx2);
  RandomStream rng(20240807);
  for (std::size_t n = 0; n <= 67; ++n) {
    for (std::size_t off = 0; off < 8; ++off) {
      const auto a = random_buffer(n + off, rng);
      const auto b = random_buffer(n + off, rng);
      const double* ap = a.data() + off;
      const double* bp = b.data() + off;
      EXPECT_LE(rel_diff(s.dot(ap, bp, n), v.dot(ap, bp, n)), kArmTol)
          << "dot n=" << n << " off=" << off;
    }
  }
}

TEST(SimdFuzz, Dot4AgreesAcrossArms) {
  const KernelTable& s = simd::kernel_table(Path::kScalar);
  const KernelTable& v = simd::kernel_table(Path::kAvx2);
  RandomStream rng(77001);
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 17u, 24u, 63u}) {
    for (std::size_t off = 0; off < 4; ++off) {
      const auto a = random_buffer(n + off, rng);
      const auto b0 = random_buffer(n + off, rng);
      const auto b1 = random_buffer(n + off, rng);
      const auto b2 = random_buffer(n + off, rng);
      const auto b3 = random_buffer(n + off, rng);
      double outs[4], outv[4];
      s.dot4(a.data() + off, b0.data() + off, b1.data() + off,
             b2.data() + off, b3.data() + off, n, outs);
      v.dot4(a.data() + off, b0.data() + off, b1.data() + off,
             b2.data() + off, b3.data() + off, n, outv);
      for (int r = 0; r < 4; ++r)
        EXPECT_LE(rel_diff(outs[r], outv[r]), kArmTol)
            << "dot4 n=" << n << " off=" << off << " r=" << r;
    }
  }
}

TEST(SimdFuzz, AxpyAndScaledCopyAgreeAcrossArms) {
  const KernelTable& s = simd::kernel_table(Path::kScalar);
  const KernelTable& v = simd::kernel_table(Path::kAvx2);
  RandomStream rng(5150);
  for (std::size_t n : {0u, 1u, 2u, 5u, 8u, 13u, 24u, 40u, 65u}) {
    for (std::size_t off = 0; off < 8; off += 3) {
      const auto x = random_buffer(n + off, rng);
      auto ys = random_buffer(n + off, rng);
      auto yv = ys;
      const double alpha = rng.normal();
      s.axpy(ys.data() + off, alpha, x.data() + off, n);
      v.axpy(yv.data() + off, alpha, x.data() + off, n);
      for (std::size_t i = 0; i < n + off; ++i)
        EXPECT_LE(rel_diff(ys[i], yv[i]), kArmTol) << "axpy n=" << n;

      auto ds = random_buffer(n + off, rng);
      auto dv = ds;
      const double scale = rng.normal();
      s.scaled_copy(ds.data() + off, scale, x.data() + off, n);
      v.scaled_copy(dv.data() + off, scale, x.data() + off, n);
      for (std::size_t i = 0; i < n + off; ++i)
        EXPECT_EQ(ds[i], dv[i]) << "scaled_copy n=" << n;

      // In-place aliasing (dst == src) is part of the contract.
      auto es = random_buffer(n + off, rng);
      auto ev = es;
      s.scaled_copy(es.data() + off, scale, es.data() + off, n);
      v.scaled_copy(ev.data() + off, scale, ev.data() + off, n);
      for (std::size_t i = 0; i < n + off; ++i)
        EXPECT_EQ(es[i], ev[i]) << "scaled_copy aliased n=" << n;
    }
  }
}

// The coarse kernels: fuzz both arms against a plain reference across
// shapes on and off the 4/8 tile grid, including the k above the packed
// tile cap.
TEST(SimdFuzz, GemmNtMatchesReferenceOnBothArms) {
  RandomStream rng(31337);
  const std::size_t shapes[][3] = {  // {m, n, k}
      {0, 0, 0}, {1, 1, 1},   {2, 3, 5},   {3, 8, 24},  {4, 8, 24},
      {5, 7, 9}, {6, 12, 24}, {9, 24, 24}, {17, 9, 33}, {12, 16, 300},
  };
  for (const auto& shape : shapes) {
    const std::size_t m = shape[0], n = shape[1], k = shape[2];
    const auto a = random_buffer(m * k, rng);
    const auto b = random_buffer(n * k, rng);
    std::vector<double> ref(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        long double acc = 0.0L;
        for (std::size_t t = 0; t < k; ++t)
          acc += static_cast<long double>(a[i * k + t]) * b[j * k + t];
        ref[i * n + j] = static_cast<double>(acc);
      }
    for (const Path path : {Path::kScalar, Path::kAvx2}) {
      const KernelTable& t = simd::kernel_table(path);
      std::vector<double> c(m * n, -1.0);
      t.gemm_nt(c.data(), n, a.data(), k, m, b.data(), k, n, k);
      for (std::size_t i = 0; i < m * n; ++i)
        EXPECT_LE(rel_diff(c[i], ref[i]), kArmTol)
            << "gemm m=" << m << " n=" << n << " k=" << k << " path="
            << static_cast<int>(path);
    }
  }
}

TEST(SimdFuzz, SyrkUtMatchesReferenceOnBothArms) {
  RandomStream rng(90210);
  const std::size_t shapes[][3] = {  // {r, n, stride_extra}
      {0, 4, 0},  {1, 1, 0},  {3, 5, 2},  {5, 8, 0},   {16, 24, 0},
      {17, 24, 0}, {33, 12, 3}, {64, 7, 1}, {40, 128, 0}, {7, 30, 0},
  };
  const double alphas[] = {1.0, -0.5, 2.25};
  for (const auto& shape : shapes) {
    const std::size_t r = shape[0], n = shape[1];
    const std::size_t stride = n + shape[2];
    const auto a = random_buffer(r * stride + 1, rng);
    for (const double alpha : alphas) {
      // Reference: upper triangle of C0 + alpha * A^T A.
      const auto c0 = random_buffer(n * n, rng);
      std::vector<double> ref = c0;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
          long double acc = 0.0L;
          for (std::size_t p = 0; p < r; ++p)
            acc += static_cast<long double>(a[p * stride + i]) *
                   a[p * stride + j];
          ref[i * n + j] += alpha * static_cast<double>(acc);
        }
      for (const Path path : {Path::kScalar, Path::kAvx2}) {
        const KernelTable& t = simd::kernel_table(path);
        std::vector<double> c = c0;
        t.syrk_ut(c.data(), n, alpha, a.data(), r, n, stride);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            if (j >= i) {
              EXPECT_LE(rel_diff(c[i * n + j], ref[i * n + j]), kArmTol)
                  << "syrk r=" << r << " n=" << n << " path="
                  << static_cast<int>(path);
            } else {
              // Strictly lower triangle must be untouched.
              EXPECT_EQ(c[i * n + j], c0[i * n + j]);
            }
          }
      }
    }
  }
}

// Per-arm determinism: repeated evaluation is bitwise stable (the fixed
// blocked summation order cannot depend on anything but the shape).
TEST(SimdFuzz, KernelsAreBitwiseDeterministicPerArm) {
  RandomStream rng(4242);
  const std::size_t m = 9, n = 13, k = 27, r = 21;
  const auto a = random_buffer(m * k, rng);
  const auto b = random_buffer(n * k, rng);
  const auto s = random_buffer(r * n, rng);
  for (const Path path : {Path::kScalar, Path::kAvx2}) {
    const KernelTable& t = simd::kernel_table(path);
    std::vector<double> c1(m * n, 0.0), c2(m * n, 0.0);
    t.gemm_nt(c1.data(), n, a.data(), k, m, b.data(), k, n, k);
    t.gemm_nt(c2.data(), n, a.data(), k, m, b.data(), k, n, k);
    EXPECT_EQ(c1, c2);
    std::vector<double> g1(n * n, 0.0), g2(n * n, 0.0);
    t.syrk_ut(g1.data(), n, 1.0, s.data(), r, n, n);
    t.syrk_ut(g2.data(), n, 1.0, s.data(), r, n, n);
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(t.dot(a.data(), b.data(), k), t.dot(a.data(), b.data(), k));
  }
}

TEST(SimdMatrix, StorageIs64ByteAligned) {
  for (const std::size_t rows : {1u, 3u, 24u, 128u}) {
    for (const std::size_t cols : {1u, 5u, 24u, 128u}) {
      Matrix m(rows, cols);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.flat().data()) % 64, 0u)
          << rows << "x" << cols;
    }
  }
  CMatrix c(7, 9);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.flat().data()) % 64, 0u);
}

// The high-level entry points route through the dispatched kernels; they
// must agree with the naive formulations on whatever arm is active.
TEST(SimdHighLevel, MultiplyTransposedBMatchesNaive) {
  RandomStream rng(11);
  const Matrix a = random_gaussian(37, 24, rng);
  const Matrix b = random_gaussian(19, 24, rng);
  const Matrix fast = multiply_transposed_b(a, b);
  const Matrix naive = a * b.transpose();
  for (std::size_t i = 0; i < fast.rows(); ++i)
    for (std::size_t j = 0; j < fast.cols(); ++j)
      EXPECT_LE(rel_diff(fast(i, j), naive(i, j)), kArmTol);
}

TEST(SimdHighLevel, SymRankKMatchesNaive) {
  RandomStream rng(13);
  const Matrix b = random_gaussian(41, 24, rng);
  Matrix g(24, 24);
  sym_rank_k_update(g, 1.0, b.flat().data(), 41, 24, 24);
  const Matrix naive = b.transpose() * b;
  for (std::size_t i = 0; i < 24u; ++i)
    for (std::size_t j = 0; j < 24u; ++j) {
      EXPECT_LE(rel_diff(g(i, j), naive(i, j)), kArmTol);
      EXPECT_EQ(g(i, j), g(j, i)) << "mirror must be exact";
    }
}

// IncrementalCholesky and the one-shot cholesky() share the dispatched
// dot kernel, so their factors agree to the last bit (the documented
// path-internal identity — see linalg/cholesky.h).
TEST(SimdHighLevel, IncrementalCholeskyBitIdenticalToOneShot) {
  RandomStream rng(29);
  const std::size_t n = 24;
  const Matrix a = random_psd(n, n, rng, 1e-3);
  const auto full = cholesky(a);
  ASSERT_TRUE(full.has_value());
  IncrementalCholesky inc(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> row(r + 1);
    for (std::size_t j = 0; j <= r; ++j) row[j] = a(r, j);
    ASSERT_TRUE(inc.append(row));
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_EQ(inc.entry(i, j), full->lower()(i, j))
          << "bit-identity broken at (" << i << "," << j << ")";
}

}  // namespace
}  // namespace pardpp
