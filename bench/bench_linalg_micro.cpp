// Microbenchmarks of the linear-algebra substrate — the Õ(1)-depth
// "oracle primitives" every PRAM round charges. These calibrate the
// wall-clock cost behind one depth unit at various sizes.
//
// Run with no arguments (the CI smoke mode), the binary times each
// dispatched kernel against the scalar arm in-process (via
// ScopedPathOverride, interleaved min-of-repeats) and writes the series
// to bench-out/BENCH_linalg_micro.json — experiment `linalg_micro` in
// the DESIGN.md §3 index. A record sets "regression": true when the
// AVX2 arm is active but a headline kernel (gemm_nt, syrk_ut) falls
// under 2x over scalar — the floor the dispatch layer is sized for.
// When the scalar arm is active (forced or no AVX2), dispatched ==
// scalar and the ratio is reported as parity, never as a regression.
//
// Any google-benchmark flag switches the binary to the interactive
// google-benchmark suite below instead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dpp/charpoly_engine.h"
#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/esp.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/pfaffian.h"
#include "linalg/simd.h"
#include "linalg/symmetric_eigen.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;

Matrix psd_fixture(std::size_t n) {
  RandomStream rng(424242);
  return random_psd(n, n, rng, 1e-6);
}

void BM_LuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto lu = lu_factor(a);
    benchmark::DoNotOptimize(lu.log_abs_det());
  }
}
BENCHMARK(BM_LuFactor)->Arg(32)->Arg(64)->Arg(128);

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto chol = cholesky(a);
    benchmark::DoNotOptimize(chol->log_det());
  }
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenValuesOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto values = symmetric_eigenvalues(a);
    benchmark::DoNotOptimize(values.back());
  }
}
BENCHMARK(BM_SymmetricEigenValuesOnly)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = psd_fixture(n);
  for (auto _ : state) {
    auto eig = symmetric_eigen(a);
    benchmark::DoNotOptimize(eig.vectors(0, 0));
  }
}
BENCHMARK(BM_SymmetricEigenFull)->Arg(32)->Arg(64)->Arg(128);

// The naive Gram orientation the blocked kernels replace: materialize the
// transpose, then the generic row-major product.
void BM_GramNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(17);
  const Matrix b = random_gaussian(n, 24, rng);
  for (auto _ : state) {
    Matrix g = b.transpose() * b;
    benchmark::DoNotOptimize(g(0, 0));
  }
}
BENCHMARK(BM_GramNaive)->Arg(256)->Arg(1024)->Arg(4096);

// Blocked symmetric rank-k update: the Gram/Schur hot-path kernel
// (sym_rank_k_update streams B's rows once, no transpose materialized).
void BM_GramBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(17);
  const Matrix b = random_gaussian(n, 24, rng);
  for (auto _ : state) {
    Matrix g(24, 24);
    sym_rank_k_update(g, 1.0, b.flat().data(), n, 24, 24);
    benchmark::DoNotOptimize(g(0, 0));
  }
}
BENCHMARK(BM_GramBlocked)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MultiplyTransposedBNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(19);
  const Matrix a = random_gaussian(n, 24, rng);
  const Matrix b = random_gaussian(24, 24, rng);
  for (auto _ : state) {
    Matrix c = a * b.transpose();
    benchmark::DoNotOptimize(c(0, 0));
  }
}
BENCHMARK(BM_MultiplyTransposedBNaive)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MultiplyTransposedB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(19);
  const Matrix a = random_gaussian(n, 24, rng);
  const Matrix b = random_gaussian(24, 24, rng);
  for (auto _ : state) {
    Matrix c = multiply_transposed_b(a, b);
    benchmark::DoNotOptimize(c(0, 0));
  }
}
BENCHMARK(BM_MultiplyTransposedB)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MarginalKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix l = psd_fixture(n);
  for (auto _ : state) {
    auto k = marginal_kernel(l);
    benchmark::DoNotOptimize(k(0, 0));
  }
}
BENCHMARK(BM_MarginalKernel)->Arg(32)->Arg(64)->Arg(128);

void BM_Pfaffian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(7);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = -v;
    }
  for (auto _ : state) {
    auto pf = pfaffian_log(a);
    benchmark::DoNotOptimize(pf.log_abs);
  }
}
BENCHMARK(BM_Pfaffian)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_LogEsp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(9);
  std::vector<double> lambda(n);
  for (auto& v : lambda) v = rng.uniform() * 2.0;
  for (auto _ : state) {
    auto e = log_esp(lambda, n / 2);
    benchmark::DoNotOptimize(e.back());
  }
}
BENCHMARK(BM_LogEsp)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineCacheBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(11);
  const Matrix l = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {static_cast<int>(n / 4)};
  for (auto _ : state) {
    CharPolyEngine engine(l, part_of, 1, counts);
    benchmark::DoNotOptimize(engine.log_count(counts).log_abs);
  }
}
BENCHMARK(BM_EngineCacheBuild)->Arg(24)->Arg(48)->Arg(96);

void BM_EngineJointMarginal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(13);
  const Matrix l = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {static_cast<int>(n / 4)};
  CharPolyEngine engine(l, part_of, 1, counts);
  (void)engine.log_count(counts);  // force cache
  const std::vector<int> batch = {0, 2, 5};
  const std::vector<int> rest = {static_cast<int>(n / 4) - 3};
  for (auto _ : state) {
    auto c = engine.log_count_superset(batch, rest);
    benchmark::DoNotOptimize(c.log_abs);
  }
}
BENCHMARK(BM_EngineJointMarginal)->Arg(24)->Arg(48)->Arg(96);

// --- scalar-vs-dispatched kernel series (bench-out/BENCH_linalg_micro) ---

using bench::JsonSeries;

/// Wall clocks of one kernel on both dispatch arms, per call.
struct ArmTiming {
  double dispatched_ms = 0.0;
  double scalar_ms = 0.0;
};

/// Times `fn` under the latched dispatch path and under a forced scalar
/// override: one untimed warmup per arm, then `repeats` timed passes of
/// `iters` calls each, *interleaving* the arms so slow host drift hits
/// both equally, keeping the minimum per arm. The sample-level protocol
/// of run_thread_sweep, specialized to the two-arm comparison.
template <typename Fn>
ArmTiming time_arms(int repeats, int iters, Fn&& fn) {
  {
    const simd::ScopedPathOverride scalar_arm(simd::Path::kScalar);
    fn();
  }
  fn();
  ArmTiming best;
  for (int r = 0; r < repeats; ++r) {
    {
      const simd::ScopedPathOverride scalar_arm(simd::Path::kScalar);
      Timer timer;
      for (int i = 0; i < iters; ++i) fn();
      const double ms = timer.millis();
      if (r == 0 || ms < best.scalar_ms) best.scalar_ms = ms;
    }
    {
      Timer timer;
      for (int i = 0; i < iters; ++i) fn();
      const double ms = timer.millis();
      if (r == 0 || ms < best.dispatched_ms) best.dispatched_ms = ms;
    }
  }
  best.dispatched_ms /= iters;
  best.scalar_ms /= iters;
  return best;
}

/// Emits one record of the series and prints the matching table row.
/// `headline` marks the two kernels the >=2x dispatch floor applies to.
void record_kernel(JsonSeries& json, bench::Table& table,
                   const char* kernel, std::size_t n, std::size_t d,
                   bool headline, const ArmTiming& timing) {
  const bool avx2_active = simd::active_path() == simd::Path::kAvx2;
  const double speedup =
      timing.dispatched_ms > 0.0 ? timing.scalar_ms / timing.dispatched_ms
                                 : 1.0;
  const double reported = bench::reported_speedup(speedup);
  const bool regression = headline && avx2_active && reported < 2.0;
  table.add_row({kernel, bench::fmt_int(n), bench::fmt_int(d),
                 bench::fmt(timing.scalar_ms * 1e3, 1),
                 bench::fmt(timing.dispatched_ms * 1e3, 1),
                 bench::fmt(reported, 1) + "x",
                 regression ? "REGRESSION" : (headline ? "ok" : "-")});
  json.add_record(
      {JsonSeries::text("experiment", "linalg_micro"),
       JsonSeries::text("kernel", kernel), JsonSeries::number("n", n),
       JsonSeries::number("d", d),
       JsonSeries::number("wall_ms", timing.dispatched_ms, 6),
       JsonSeries::number("scalar_ms", timing.scalar_ms, 6),
       JsonSeries::number("speedup", reported, 1),
       JsonSeries::boolean("regression", regression)});
}

/// The scalar-vs-dispatched series at the shapes the samplers actually
/// run: d = 24 feature Grams (syrk_ut / gemm_nt over row counts up to
/// the intermediate-sampling pool), dot at the Cholesky row lengths, and
/// the n = 128 Schur half-solve.
int run_kernel_series() {
  bench::print_header(
      "linalg_micro", "BENCH_linalg_micro.json",
      "runtime-dispatched SIMD kernels hold >=2x over the scalar arm "
      "on the GEMM/SYRK hot paths (parity when scalar is forced)");
  std::printf("dispatch: %s (PARDPP_SIMD=%s)\n", simd::path_name(),
              std::getenv("PARDPP_SIMD") ? std::getenv("PARDPP_SIMD")
                                         : "unset");
  JsonSeries json;
  bench::Table table({"kernel", "n", "d", "scalar_us", "dispatched_us",
                      "speedup", "gate"});
  constexpr int kRepeats = 5;
  constexpr std::size_t kD = 24;

  for (const std::size_t n : {std::size_t{256}, std::size_t{1024},
                              std::size_t{4096}}) {
    const int iters = static_cast<int>(16384 / n);
    RandomStream rng(17);
    const Matrix b = random_gaussian(n, kD, rng);
    Matrix g(kD, kD);
    const ArmTiming syrk = time_arms(kRepeats, iters, [&] {
      std::fill(g.flat().begin(), g.flat().end(), 0.0);
      sym_rank_k_update(g, 1.0, b.flat().data(), n, kD, kD);
      benchmark::DoNotOptimize(g(0, 0));
    });
    record_kernel(json, table, "syrk_ut", n, kD, /*headline=*/true, syrk);
  }

  for (const std::size_t n : {std::size_t{256}, std::size_t{1024},
                              std::size_t{4096}}) {
    const int iters = static_cast<int>(16384 / n);
    RandomStream rng(19);
    const Matrix a = random_gaussian(n, kD, rng);
    const Matrix b = random_gaussian(kD, kD, rng);
    const ArmTiming gemm = time_arms(kRepeats, iters, [&] {
      Matrix c = multiply_transposed_b(a, b);
      benchmark::DoNotOptimize(c(0, 0));
    });
    record_kernel(json, table, "gemm_nt", n, kD, /*headline=*/true, gemm);
  }

  for (const std::size_t n : {std::size_t{24}, std::size_t{128},
                              std::size_t{1024}}) {
    RandomStream rng(23);
    const Matrix a = random_gaussian(2, n, rng);
    const int iters = static_cast<int>(262144 / n);
    const ArmTiming dot = time_arms(kRepeats, iters, [&] {
      benchmark::DoNotOptimize(
          simd::dot(a.row(0).data(), a.row(1).data(), n));
    });
    record_kernel(json, table, "dot", n, 1, /*headline=*/false, dot);
  }

  {
    // The conditioning half-solve: R^{-1} B for the n = 128 ensemble
    // against a d = 24 feature block (feature_oracle's W solve).
    constexpr std::size_t kN = 128;
    RandomStream rng(29);
    const Matrix a = random_psd(kN, kN, rng, 1e-6);
    IncrementalCholesky chol(kN);
    std::vector<double> row(kN);
    for (std::size_t r = 0; r < kN; ++r) {
      for (std::size_t c = 0; c <= r; ++c) row[c] = a(r, c);
      if (!chol.append(std::span<const double>(row.data(), r + 1))) {
        std::printf("! half-solve fixture not PD; skipping\n");
        break;
      }
    }
    if (chol.size() == kN) {
      const Matrix rhs = random_gaussian(kN, kD, rng);
      std::vector<double> work(kN * kD);
      const ArmTiming solve = time_arms(kRepeats, 128, [&] {
        std::copy(rhs.flat().begin(), rhs.flat().end(), work.begin());
        chol.forward_solve_rows(work.data(), kD, kD);
        benchmark::DoNotOptimize(work[0]);
      });
      record_kernel(json, table, "forward_solve", kN, kD,
                    /*headline=*/false, solve);
    }
  }

  table.print();
  json.write(bench::bench_out_path("BENCH_linalg_micro.json"));
  return 0;
}

}  // namespace

/// No arguments: the JSON kernel series (what CI's bench smoke runs).
/// Any argument (e.g. --benchmark_filter=...) switches to the
/// interactive google-benchmark suite registered above.
int main(int argc, char** argv) {
  if (argc <= 1) return run_kernel_series();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
