// EXP-T11 — Theorem 11: parallel sampling of planar perfect matchings.
//
// The separator sampler's depth recursion D(n) = |separator| + D(2n/3)
// solves to O(sqrt(n)), versus the sequential matcher's n/2 rounds. We
// sweep grid sizes, report both depths, and fit the growth exponent of
// the separator sampler's depth (the paper claims ~0.5; sequential is 1).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "parallel/pram.h"
#include "planar/grid.h"
#include "planar/matching_count.h"
#include "planar/matching_sampler.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

// Second planar family: lozenge tilings of hexagons H(m,m,m). Validates
// the counting oracle against MacMahon's closed form at every size before
// sampling.
void hexagon_series() {
  print_header("EXP-T11b", "Theorem 11 on lozenge tilings",
               "same sqrt(n) depth law on the honeycomb/hexagon family; "
               "counts cross-checked against MacMahon's box formula");
  Table table({"hexagon", "n", "log#tilings", "macmahon", "seq_depth",
               "sep_depth", "sep_depth/sqrt(n)", "sep_ms"});
  RandomStream rng(94002);
  for (const std::size_t m : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const auto g = hexagon_honeycomb_graph(m, m, m);
    const MatchingCounter counter(g);
    PramLedger sep_ledger;
    Timer timer;
    RandomStream run_rng = rng.split();
    (void)sample_matching_separator(g, run_rng, &sep_ledger);
    const double sep_ms = timer.millis();
    const auto n = static_cast<double>(g.num_vertices());
    table.add_row({"H(" + std::to_string(m) + ")",
                   fmt_int(g.num_vertices()), fmt(counter.log_count(), 3),
                   fmt(log_macmahon_box(m, m, m), 3), fmt(n / 2.0, 0),
                   fmt(sep_ledger.stats().depth, 0),
                   fmt(sep_ledger.stats().depth / std::sqrt(n), 2),
                   fmt(sep_ms, 1)});
  }
  table.print();
}

}  // namespace

int main() {
  print_header("EXP-T11", "Theorem 11 (planar perfect matchings)",
               "separator sampler depth ~ O(sqrt(n)) sequential rounds "
               "vs n/2 for the sequential reduction; both exactly uniform");
  Table table({"grid", "n", "seq_depth(=n/2)", "sep_depth",
               "c=sep_depth/sqrt(n)", "sep_work(oracle)", "seq_ms",
               "sep_ms"});
  RandomStream rng(94001);
  std::vector<double> log_n;
  std::vector<double> log_depth;
  for (const std::size_t side : {4u, 6u, 8u, 10u, 12u, 14u, 16u, 20u}) {
    const auto g = grid_graph(side, side);
    const auto n = static_cast<double>(g.num_vertices());

    PramLedger seq_ledger;
    Timer seq_timer;
    RandomStream seq_rng = rng.split();
    (void)sample_matching_sequential(g, seq_rng, &seq_ledger);
    const double seq_ms = seq_timer.millis();

    PramLedger sep_ledger;
    Timer sep_timer;
    RandomStream sep_rng = rng.split();
    (void)sample_matching_separator(g, sep_rng, &sep_ledger);
    const double sep_ms = sep_timer.millis();

    const double sep_depth = sep_ledger.stats().depth;
    log_n.push_back(std::log(n));
    log_depth.push_back(std::log(sep_depth));
    table.add_row({std::to_string(side) + "x" + std::to_string(side),
                   fmt_int(g.num_vertices()),
                   fmt(seq_ledger.stats().depth, 0), fmt(sep_depth, 0),
                   fmt(sep_depth / std::sqrt(n), 2),
                   fmt(sep_ledger.stats().work, 0), fmt(seq_ms, 1),
                   fmt(sep_ms, 1)});
  }
  table.print();
  // Least-squares slope of log depth vs log n = growth exponent.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto m = static_cast<double>(log_n.size());
  for (std::size_t i = 0; i < log_n.size(); ++i) {
    sx += log_n[i];
    sy += log_depth[i];
    sxx += log_n[i] * log_n[i];
    sxy += log_n[i] * log_depth[i];
  }
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  std::printf(
      "\nfitted depth exponent: depth ~ n^%.3f   (paper: 0.5 up to logs; "
      "sequential baseline: 1.0)\n"
      "(the recursion constant ~ sum over levels of sqrt(2/3)^j inflates\n"
      "the small-n fit; the c = depth/sqrt(n) column stabilizing while\n"
      "depth/n falls is the quadratic speedup)\n",
      slope);
  hexagon_series();
  return 0;
}
