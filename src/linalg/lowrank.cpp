#include "linalg/lowrank.h"

#include <cmath>

#include "linalg/schur.h"
#include "linalg/simd.h"
#include "linalg/symmetric_eigen.h"
#include "support/error.h"

namespace pardpp {

LowRankEigen eigen_from_features(const Matrix& b, double rank_tol) {
  const std::size_t n = b.rows();
  const std::size_t d = b.cols();
  // d x d Gram by the blocked SYRK kernel: streams B's rows once instead
  // of materializing the transpose and running the generic product.
  Matrix gram(d, d);
  sym_rank_k_update(gram, 1.0, b.flat().data(), n, d, d);
  const auto eig = symmetric_eigen(gram);
  double top = 0.0;
  for (const double v : eig.values) top = std::max(top, v);
  const double floor = std::max(top * rank_tol, 1e-300);
  LowRankEigen out;
  std::vector<std::size_t> keep;
  for (std::size_t m = 0; m < d; ++m) {
    if (eig.values[m] > floor) {
      keep.push_back(m);
      out.values.push_back(eig.values[m]);
    }
  }
  // U = B V diag(lambda)^{-1/2}: orthonormal because
  // U^T U = diag(l)^{-1/2} V^T (B^T B) V diag(l)^{-1/2} = I.
  out.vectors = Matrix(n, keep.size());
  for (std::size_t j = 0; j < keep.size(); ++j) {
    const double inv_sqrt = 1.0 / std::sqrt(out.values[j]);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c)
        acc += b(i, c) * eig.vectors(c, keep[j]);
      out.vectors(i, j) = acc * inv_sqrt;
    }
  }
  return out;
}

Matrix gather_scaled_rows(const Matrix& b, std::span<const int> items,
                          std::span<const double> scales) {
  check_arg(scales.empty() || scales.size() == items.size(),
            "gather_scaled_rows: scales/items size mismatch");
  const std::size_t d = b.cols();
  Matrix out(items.size(), d);
  const simd::KernelTable& kernels = simd::active_kernels();
  for (std::size_t j = 0; j < items.size(); ++j) {
    check_arg(items[j] >= 0 && static_cast<std::size_t>(items[j]) < b.rows(),
              "gather_scaled_rows: index out of range");
    const auto src = b.row(static_cast<std::size_t>(items[j]));
    const double s = scales.empty() ? 1.0 : scales[j];
    kernels.scaled_copy(out.row(j).data(), s, src.data(), d);
  }
  return out;
}

void orthonormalize_feature_rows(const Matrix& b, std::span<const int> t,
                                 std::vector<double>& q) {
  const std::size_t d = b.cols();
  q.resize(t.size() * d);
  const simd::KernelTable& kernels = simd::active_kernels();
  for (std::size_t j = 0; j < t.size(); ++j) {
    check_arg(t[j] >= 0 && static_cast<std::size_t>(t[j]) < b.rows(),
              "orthonormalize_feature_rows: index out of range");
    const auto row = b.row(static_cast<std::size_t>(t[j]));
    double* qj = q.data() + j * d;
    kernels.scaled_copy(qj, 1.0, row.data(), d);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        const double* qp = q.data() + prev * d;
        kernels.axpy(qj, -kernels.dot(qj, qp, d), qp, d);
      }
    }
    const double norm = std::sqrt(kernels.dot(qj, qj, d));
    check_numeric(norm > 1e-10,
                  "condition_features: B_T rows are linearly dependent "
                  "(conditioning on a probability-zero event)");
    kernels.scaled_copy(qj, 1.0 / norm, qj, d);
  }
}

Matrix condition_features(const Matrix& b, std::span<const int> t) {
  const std::size_t d = b.cols();
  check_arg(t.size() <= d, "condition_features: |T| exceeds the rank");
  if (t.empty()) return b;
  // Orthonormal basis Q (d x t) of span{B_T rows}; failure to normalize
  // means det(L_TT) = 0.
  std::vector<double> qrows;
  orthonormalize_feature_rows(b, t, qrows);
  Matrix q(d, t.size());
  for (std::size_t j = 0; j < t.size(); ++j)
    for (std::size_t c = 0; c < d; ++c) q(c, j) = qrows[j * d + c];
  // Extend Q to a full orthonormal basis; the complement Z (d x (d - t))
  // comes from orthogonalizing the standard basis against Q.
  Matrix z(d, d - t.size());
  std::size_t filled = 0;
  std::vector<double> candidate(d);
  for (std::size_t e = 0; e < d && filled < d - t.size(); ++e) {
    for (std::size_t c = 0; c < d; ++c) candidate[c] = (c == e) ? 1.0 : 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = 0; j < t.size(); ++j) {
        double dot = 0.0;
        for (std::size_t c = 0; c < d; ++c) dot += candidate[c] * q(c, j);
        for (std::size_t c = 0; c < d; ++c) candidate[c] -= dot * q(c, j);
      }
      for (std::size_t j = 0; j < filled; ++j) {
        double dot = 0.0;
        for (std::size_t c = 0; c < d; ++c) dot += candidate[c] * z(c, j);
        for (std::size_t c = 0; c < d; ++c) candidate[c] -= dot * z(c, j);
      }
    }
    double norm = 0.0;
    for (std::size_t c = 0; c < d; ++c) norm += candidate[c] * candidate[c];
    norm = std::sqrt(norm);
    if (norm < 1e-8) continue;  // e_i was (nearly) inside the span
    for (std::size_t c = 0; c < d; ++c) z(c, filled) = candidate[c] / norm;
    ++filled;
  }
  check_numeric(filled == d - t.size(),
                "condition_features: failed to complete the basis");
  // B' = B_R Z.
  const auto keep = complement_indices(b.rows(), t);
  Matrix out(keep.size(), d - t.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto row = static_cast<std::size_t>(keep[i]);
    for (std::size_t j = 0; j < d - t.size(); ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) acc += b(row, c) * z(c, j);
      out(i, j) = acc;
    }
  }
  return out;
}

}  // namespace pardpp
