#!/usr/bin/env python3
"""Unit tests for the perf-trajectory comparator (scripts/compare_bench.py).

Exercised directly by the CI lint job (`python3 -m unittest discover -s
scripts`), so regressions in the gating logic fail before the build
matrix spends an hour discovering them the hard way. Each test builds a
baseline/current directory pair under a tempdir and asserts on the exit
code of `compare()` — the same entry point the workflow calls.
"""

import json
import os
import shutil
import tempfile
import unittest

import compare_bench

HOST_A = {
    "host_cpus": 8,
    "host_nproc": 8,
    "host_cpu_model": "TestCPU v1",
}
HOST_B = {
    "host_cpus": 64,
    "host_nproc": 32,
    "host_cpu_model": "TestCPU v2",
}


def record(wall_ms, host=None, **identity):
    entry = {"experiment": "unit", "family": "f", "pool": 1}
    entry.update(identity)
    entry["wall_ms"] = wall_ms
    entry.update(host or {})
    return entry


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="compare-bench-test-")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def write_dir(self, name, records):
        directory = os.path.join(self.tmp, name)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "BENCH_unit.json"), "w") as out:
            json.dump(records, out)
        return directory

    def compare(self, baseline, current, advisory=False):
        return compare_bench.compare(
            baseline, current, warn=0.10, fail=0.25, advisory=advisory
        )

    def test_missing_baseline_dir_is_not_gating(self):
        current = self.write_dir("current", [record(100.0, HOST_A)])
        missing = os.path.join(self.tmp, "does-not-exist")
        self.assertEqual(self.compare(missing, current), 0)

    def test_missing_current_records_fail(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        empty = os.path.join(self.tmp, "empty")
        os.makedirs(empty)
        self.assertEqual(self.compare(baseline, empty), 1)

    def test_new_record_without_baseline_is_informational(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir(
            "current",
            [record(100.0, HOST_A), record(5000.0, HOST_A, n=999)],
        )
        self.assertEqual(self.compare(baseline, current), 0)

    def test_same_host_regression_gates(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current), 1)

    def test_advisory_downgrades_regression_to_exit_zero(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current, advisory=True), 0)

    def test_host_mismatch_downgrades_regression_to_warning(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_B)])
        self.assertEqual(self.compare(baseline, current), 0)

    def test_host_fields_are_not_identity(self):
        # A runner change must not orphan the record pair: the records
        # still match, and a within-threshold timing passes cleanly.
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(101.0, HOST_B)])
        self.assertEqual(self.compare(baseline, current), 0)

    def test_records_without_host_fields_still_gate(self):
        # Pre-provenance records (older snapshots) carry no host fields;
        # absence on either side must not be read as a mismatch.
        baseline = self.write_dir("baseline", [record(100.0)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current), 1)

    def test_snapshot_round_trip_preserves_host_fields(self):
        bench_dir = self.write_dir("out", [record(100.0, HOST_A)])
        snapshot = os.path.join(self.tmp, "BENCH_trajectory.json")
        self.assertEqual(compare_bench.write_snapshot(snapshot, bench_dir), 0)
        with open(snapshot) as handle:
            entries = json.load(handle)
        self.assertEqual(len(entries), 1)
        for field in compare_bench.HOST_FIELDS:
            self.assertIn(field, entries[0])
        # Exploding the snapshot back into a baseline keeps the mismatch
        # machinery live: a regression on different hardware is advisory.
        exploded = compare_bench.snapshot_as_baseline(
            snapshot, os.path.join(self.tmp, "exploded")
        )
        current = self.write_dir("current", [record(200.0, HOST_B)])
        self.assertEqual(self.compare(exploded, current), 0)
        same_host = self.write_dir("same-host", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(exploded, same_host), 1)


if __name__ == "__main__":
    unittest.main()
