// EXP-LS — intermediate-sampling front end at million-item ground sets.
//
// The full-n session path pays the base spectral preprocessing on the
// whole ground set (O(n d²) and n-sized caches per session, O(n d) per
// round), which caps practical n at a few thousand-to-hundred-thousand.
// The distillation front end (DESIGN.md §2 convention 8) pays one O(n d)
// diagonal pass at prime time and then serves draws whose cost is
// independent of n — so an n = 10^6 low-rank ensemble is served in
// milliseconds per draw on this container, while the full-n path's
// per-draw cost is reported by extrapolation and marked estimated.
//
// Contract checks folded into the measurement: distilled samples are
// bit-identical at every pool size and against the condition() reference
// from one seed, and at enumeration scale the distilled output law
// passes a chi-square test against exhaustive enumeration.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "dpp/feature_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "planar/grid.h"
#include "planar/transfer_current.h"
#include "sampling/session.h"
#include "support/combinatorics.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

std::vector<std::vector<int>> items_of(std::vector<SampleResult> results) {
  std::vector<std::vector<int>> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(r.items));
  return out;
}

// Shared chi-square machinery: Pearson statistic over ranked subset
// counts with expected-below-5 cells pooled, against the Wilson–Hilferty
// upper quantile at z = 4 (~3e-5 false-alarm rate).
struct ChiSquare {
  double statistic = 0.0;
  double dof = 1.0;
  double threshold = 0.0;
  bool ok = false;
};

ChiSquare chi_square_pooled(const std::vector<double>& expected,
                            const std::vector<double>& counts) {
  ChiSquare out;
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] < 5.0) {
      pooled_expected += expected[i];
      pooled_observed += counts[i];
      continue;
    }
    const double diff = counts[i] - expected[i];
    out.statistic += diff * diff / expected[i];
    ++cells;
  }
  if (pooled_expected > 0.0 || pooled_observed > 0.0) {
    const double diff = pooled_observed - pooled_expected;
    out.statistic += diff * diff / std::max(pooled_expected, 1.0);
    ++cells;
  }
  out.dof = cells > 1 ? static_cast<double>(cells - 1) : 1.0;
  const double h = 2.0 / (9.0 * out.dof);
  const double cube = 1.0 - h + 4.0 * std::sqrt(h);
  out.threshold = out.dof * cube * cube * cube;
  out.ok = out.statistic < out.threshold;
  return out;
}

// Pearson chi-square of distilled samples against enumeration (cells
// with expected count < 5 pooled, mirroring tests/test_util.h), plus the
// pool-size / reference bit-identity sweep, for the per-draw-pool or the
// persistent-proposal mode. Returns regression = law or identity failure.
bool exactness_block(JsonSeries& json, bool persistent) {
  const std::size_t n = 12;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const std::size_t trials = 3000;
  RandomStream setup(901001);
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);

  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = persistent;
  // A small forced domain keeps both alias and tail levels on the
  // measured path at enumeration scale.
  if (persistent) options.distill.sparsified_domain = 4;
  SessionOptions reference_options = options;
  reference_options.use_commit = false;
  SamplerSession session(oracle, options);
  SamplerSession reference_session(oracle, reference_options);

  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(901002);
    per_pool.push_back(items_of(session.draw_many(trials, rng, ctx)));
  }
  bool identical = per_pool[1] == per_pool[0] && per_pool[2] == per_pool[0];
  RandomStream reference_rng(901002);
  identical = identical &&
              items_of(reference_session.draw_many(
                  trials, reference_rng, ExecutionContext::serial())) ==
                  per_pool[0];

  // Exact probabilities by enumeration; chi-square with sparse cells
  // pooled at expected < 5.
  const SubsetIndexer indexer(static_cast<int>(n), static_cast<int>(k));
  std::vector<double> log_masses(indexer.count());
  std::vector<double> counts(indexer.count(), 0.0);
  for_each_subset(static_cast<int>(n), static_cast<int>(k),
                  [&](std::span<const int> s) {
                    log_masses[indexer.rank(s)] =
                        signed_log_det(l.principal(s)).log_abs;
                  });
  double log_z = kNegInf;
  for (const double lm : log_masses) log_z = log_add(log_z, lm);
  for (const auto& s : per_pool[0]) counts[indexer.rank(s)] += 1.0;
  std::vector<double> expected(log_masses.size());
  for (std::size_t i = 0; i < log_masses.size(); ++i)
    expected[i] = std::exp(log_masses[i] - log_z) * static_cast<double>(trials);
  const ChiSquare chi = chi_square_pooled(expected, counts);

  const char* mode = persistent ? "persistent" : "perdraw";
  Table table({"mode", "n", "d", "k", "trials", "chi2", "dof", "threshold",
               "law_ok", "identical"});
  table.add_row({mode, fmt_int(n), fmt_int(d), fmt_int(k), fmt_int(trials),
                 fmt(chi.statistic, 1), fmt(chi.dof, 0),
                 fmt(chi.threshold, 1), chi.ok ? "yes" : "NO",
                 identical ? "yes" : "NO"});
  table.print();
  json.add_record(
      {JsonSeries::text("experiment", "largescale_exactness"),
       JsonSeries::text("mode", mode), JsonSeries::number("n", n),
       JsonSeries::number("d", d), JsonSeries::number("k", k),
       JsonSeries::number("trials", trials),
       JsonSeries::number("chi_square", chi.statistic, 2),
       JsonSeries::number("dof", chi.dof, 0),
       JsonSeries::text("identical", identical ? "yes" : "no"),
       JsonSeries::boolean("regression", !chi.ok || !identical)});
  return !chi.ok || !identical;
}

struct ScalePoint {
  std::size_t n = 0;
  double prime_ms = 0.0;
  double draw_ms = 0.0;
  double accept_rate = 1.0;
  double full_prime_ms = 0.0;
  double full_draw_ms = 0.0;
  bool full_estimated = false;
  bool identical = true;
};

ScalePoint measure_scale(std::size_t n, std::size_t d, std::size_t k,
                         bool full_feasible, const ScalePoint* extrapolate) {
  ScalePoint point;
  point.n = n;
  RandomStream setup(902000 + static_cast<std::uint64_t>(n % 9973));
  Matrix features = random_gaussian(n, d, setup);
  // Move the features in: at n = 10^6 the matrix is the dominant
  // allocation and must not be duplicated.
  const FeatureKdppOracle oracle(std::move(features), k);

  SessionOptions options;
  options.distill.enabled = true;
  Timer prime_timer;
  SamplerSession session(oracle, options);
  point.prime_ms = prime_timer.millis();

  const std::size_t draws = 32;
  const std::uint64_t seed = 902777;
  {
    RandomStream rng(seed);  // untimed warmup
    (void)session.draw_many(draws, rng, ExecutionContext::serial());
  }
  std::size_t proposals = 0;
  std::size_t accepted = 0;
  std::vector<std::vector<int>> reference_items;
  for (int pass = 0; pass < 3; ++pass) {
    RandomStream rng(seed);
    Timer timer;
    auto results = session.draw_many(draws, rng, ExecutionContext::serial());
    const double ms = timer.millis() / static_cast<double>(draws);
    if (pass == 0 || ms < point.draw_ms) point.draw_ms = ms;
    if (pass == 0) {
      for (const auto& r : results) {
        proposals += r.diag.proposals;
        accepted += r.diag.accepted_batches;
      }
      reference_items = items_of(std::move(results));
    }
  }
  point.accept_rate = proposals == 0
                          ? 1.0
                          : static_cast<double>(accepted) /
                                static_cast<double>(proposals);

  // Determinism: the distilled draw sequence is a function of the seed
  // alone at every pool size.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    point.identical =
        point.identical &&
        items_of(session.draw_many(draws, rng, ctx)) == reference_items;
  }

  if (full_feasible) {
    // The full-n session path: base spectral preprocessing (the n x d
    // eigenvector matrix, the n-sized marginal caches) at prime time,
    // O(n d) rounds per draw.
    SessionOptions full_options;
    Timer full_prime_timer;
    SamplerSession full_session(oracle, full_options);
    point.full_prime_ms = full_prime_timer.millis();
    const std::size_t full_draws = 4;
    RandomStream rng(seed);
    Timer timer;
    (void)full_session.draw_many(full_draws, rng, ExecutionContext::serial());
    point.full_draw_ms = timer.millis() / static_cast<double>(full_draws);
  } else {
    // Infeasible at this n on the reference container (the prime alone
    // would materialize two further n x d matrices and run an O(n d²)
    // eigenvector pass); report the linear-in-n extrapolation from the
    // largest measured point, marked estimated.
    point.full_estimated = true;
    const double scale = static_cast<double>(n) /
                         static_cast<double>(extrapolate->n);
    point.full_prime_ms = extrapolate->full_prime_ms * scale;
    point.full_draw_ms = extrapolate->full_draw_ms * scale;
  }
  return point;
}

// ---- EXP-SS: steady-state draws with the persistent proposal ----

struct SteadyPoint {
  double prime_ms = 0.0;
  double steady_draw_ms = 0.0;
  double accept_rate = 1.0;
  double p_domain = 1.0;
  double tail_rate = 0.0;
  std::uint64_t heavy_tail_pools = 0;
  std::uint64_t refreshes = 0;
  bool identical = true;
};

SteadyPoint measure_steady(const FeatureKdppOracle& oracle, bool persistent,
                           std::uint64_t seed) {
  SteadyPoint point;
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = persistent;
  Timer prime_timer;
  SamplerSession session(oracle, options);
  point.prime_ms = prime_timer.millis();

  const std::size_t draws = 64;
  std::vector<std::vector<int>> reference_items;
  {
    RandomStream rng(seed);  // untimed warmup
    (void)session.draw_many(draws, rng, ExecutionContext::serial());
  }
  std::size_t proposals = 0;
  std::size_t accepted = 0;
  for (int pass = 0; pass < 3; ++pass) {
    RandomStream rng(seed);
    Timer timer;
    auto results = session.draw_many(draws, rng, ExecutionContext::serial());
    const double ms = timer.millis() / static_cast<double>(draws);
    if (pass == 0 || ms < point.steady_draw_ms) point.steady_draw_ms = ms;
    if (pass == 0) {
      for (const auto& r : results) {
        proposals += r.diag.proposals;
        accepted += r.diag.accepted_batches;
      }
      reference_items = items_of(std::move(results));
    }
  }
  point.accept_rate = proposals == 0
                          ? 1.0
                          : static_cast<double>(accepted) /
                                static_cast<double>(proposals);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    point.identical =
        point.identical &&
        items_of(session.draw_many(draws, rng, ctx)) == reference_items;
  }

  const DistillationPlan* plan = session.distillation_plan();
  if (persistent && plan != nullptr) {
    point.p_domain = plan->domain_mass_fraction();
    const auto stats = plan->proposal_stats();
    point.heavy_tail_pools = stats.heavy_tail_pools;
    point.refreshes = stats.refreshes;
    const double candidates = static_cast<double>(stats.pools) *
                              static_cast<double>(plan->candidate_budget());
    point.tail_rate = candidates == 0.0
                          ? 0.0
                          : static_cast<double>(stats.tail_candidates) /
                                candidates;
  }
  return point;
}

// Amortized steady-state draws at n = 10^6 with and without the
// persistent sparsified proposal, on two leverage profiles:
//
//  - "spiked": ~k·polylog heavy rows (unit scale) scattered uniformly
//    across [n] among 10^6 light rows (scale 0.01, relative weight
//    1e-4) — the leverage-concentrated regime the sparsification
//    targets. The per-draw baseline's inverse-CDF probes converge to
//    ~3200 positions scattered over the 8 MB cumulative table; the
//    persistent alias answers ~97% of candidates from a ~50 KB table.
//    This speedup is the gated claim.
//  - "flat": uniform gaussian rows, domain mass ~0.3%, nearly every
//    candidate falls back to the full-n tail path — reported honestly
//    as the regime boundary, informational only. (A prefix-zipf profile
//    is similarly no-win for the opposite reason: with the mass in a
//    contiguous prefix the baseline's probe path is already
//    cache-resident.)
bool steady_state_block(JsonSeries& json) {
  const std::size_t n = 1000000;
  const std::size_t d = 24;
  const std::size_t k = 8;
  bool regression = false;
  Table table({"profile", "mode", "prime_ms", "steady_draw_ms", "accept",
               "p_domain", "tail_rate", "speedup", "identical"});
  for (const bool spiked : {true, false}) {
    RandomStream setup(903001);
    Matrix features = random_gaussian(n, d, setup);
    if (spiked) {
      // Every 312th row keeps unit scale (~3205 heavy rows, matching
      // the auto domain size k·ceil(log2 n)² = 3200); the rest shrink
      // to 0.01 (relative weight 1e-4, total tail mass ~3% of tau).
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 312 == 0) continue;
        for (std::size_t c = 0; c < d; ++c) features(i, c) *= 0.01;
      }
    }
    const FeatureKdppOracle oracle(std::move(features), k);
    const char* profile = spiked ? "spiked" : "flat";

    const SteadyPoint baseline = measure_steady(oracle, false, 903100);
    const SteadyPoint persistent = measure_steady(oracle, true, 903100);
    const double speedup = baseline.steady_draw_ms /
                           persistent.steady_draw_ms;
    // The tentpole claim, gated on the regime it targets: persistent
    // steady-state draws on the spiked profile measurably faster than
    // the per-draw-pool baseline (gate ~20% below the measured value,
    // repo convention).
    const bool speedup_ok = !spiked || speedup >= 1.05;
    regression = regression || !baseline.identical ||
                 !persistent.identical || !speedup_ok;

    table.add_row({profile, "perdraw", fmt(baseline.prime_ms, 1),
                   fmt(baseline.steady_draw_ms, 3),
                   fmt(baseline.accept_rate, 2), "-", "-", "1.0x",
                   baseline.identical ? "yes" : "NO"});
    table.add_row({profile, "persistent", fmt(persistent.prime_ms, 1),
                   fmt(persistent.steady_draw_ms, 3),
                   fmt(persistent.accept_rate, 2),
                   fmt(persistent.p_domain, 3),
                   fmt(persistent.tail_rate, 3), fmt(speedup, 2) + "x",
                   persistent.identical ? "yes" : "NO"});
    json.add_record(
        {JsonSeries::text("experiment", "steadystate_distill"),
         JsonSeries::text("family", "feature"),
         JsonSeries::text("profile", profile),
         JsonSeries::text("mode", "perdraw"), JsonSeries::number("n", n),
         JsonSeries::number("d", d), JsonSeries::number("k", k),
         JsonSeries::number("prime_ms", baseline.prime_ms, 3),
         JsonSeries::number("steady_draw_ms", baseline.steady_draw_ms, 4),
         JsonSeries::number("accept_rate", baseline.accept_rate, 3),
         JsonSeries::text("identical", baseline.identical ? "yes" : "no"),
         JsonSeries::boolean("regression", !baseline.identical)});
    json.add_record(
        {JsonSeries::text("experiment", "steadystate_distill"),
         JsonSeries::text("family", "feature"),
         JsonSeries::text("profile", profile),
         JsonSeries::text("mode", "persistent"), JsonSeries::number("n", n),
         JsonSeries::number("d", d), JsonSeries::number("k", k),
         JsonSeries::number("prime_ms", persistent.prime_ms, 3),
         JsonSeries::number("steady_draw_ms", persistent.steady_draw_ms, 4),
         JsonSeries::number("accept_rate", persistent.accept_rate, 3),
         JsonSeries::number("p_domain", persistent.p_domain, 4),
         JsonSeries::number("tail_rate", persistent.tail_rate, 4),
         JsonSeries::number("heavy_tail_pools",
                            static_cast<double>(persistent.heavy_tail_pools),
                            0),
         JsonSeries::number("refreshes",
                            static_cast<double>(persistent.refreshes), 0),
         JsonSeries::number("speedup_vs_perdraw", speedup, 2),
         JsonSeries::text("identical", persistent.identical ? "yes" : "no"),
         JsonSeries::boolean("regression",
                             !persistent.identical || !speedup_ok)});
  }
  table.print();
  return regression;
}

// Spanning trees through the session layer: uniform-tree law on the 2x3
// grid against enumeration (chi-square + exact marginals vs the
// transfer-current diagonal), and amortized draw throughput on an 8x8
// grid (k = 63 projection DPP on 112 edges, commit path).
bool spanning_tree_block(JsonSeries& json) {
  const PlanarGraph small = grid_graph(2, 3);
  const FeatureKdppOracle small_oracle = spanning_tree_oracle(small);
  const auto trees = enumerate_spanning_trees(small);
  const std::size_t trials = 3000;

  SamplerSession session(small_oracle, SessionOptions{});
  RandomStream rng(904001);
  auto results = session.draw_many(trials, rng, ExecutionContext::serial());
  std::map<std::vector<int>, double> counts;
  for (auto& r : results) counts[std::move(r.items)] += 1.0;
  std::vector<double> expected(trees.size());
  std::vector<double> observed(trees.size());
  bool only_trees = true;
  double seen = 0.0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    expected[t] =
        static_cast<double>(trials) / static_cast<double>(trees.size());
    const auto it = counts.find(trees[t]);
    observed[t] = it == counts.end() ? 0.0 : it->second;
    seen += observed[t];
  }
  only_trees = seen == static_cast<double>(trials);  // no non-tree sample
  const ChiSquare chi = chi_square_pooled(expected, observed);

  const Matrix t_matrix = transfer_current_matrix(small);
  const auto marginals = small_oracle.marginals();
  double marginal_err = 0.0;
  std::vector<double> tree_freq(small.num_edges(), 0.0);
  for (const auto& tree : trees)
    for (const int e : tree) tree_freq[static_cast<std::size_t>(e)] += 1.0;
  for (std::size_t e = 0; e < small.num_edges(); ++e) {
    const double exact = tree_freq[e] / static_cast<double>(trees.size());
    marginal_err = std::max(marginal_err, std::abs(marginals[e] - exact));
    marginal_err =
        std::max(marginal_err, std::abs(t_matrix(e, e) - exact));
  }
  const bool law_ok = chi.ok && only_trees && marginal_err < 1e-10;

  // Throughput scale: 8x8 grid, k = 63 over 112 edges.
  const PlanarGraph big = grid_graph(8, 8);
  const FeatureKdppOracle big_oracle = spanning_tree_oracle(big);
  Timer prime_timer;
  SamplerSession big_session(big_oracle, SessionOptions{});
  const double prime_ms = prime_timer.millis();
  const std::size_t draws = 16;
  double draw_ms = 0.0;
  {
    RandomStream warmup_rng(904002);
    (void)big_session.draw_many(4, warmup_rng, ExecutionContext::serial());
  }
  for (int pass = 0; pass < 3; ++pass) {
    RandomStream pass_rng(904002);
    Timer timer;
    (void)big_session.draw_many(draws, pass_rng, ExecutionContext::serial());
    const double ms = timer.millis() / static_cast<double>(draws);
    if (pass == 0 || ms < draw_ms) draw_ms = ms;
  }
  const double draws_per_sec = 1000.0 / draw_ms;

  Table table({"graph", "edges", "k", "chi2", "threshold", "marginal_err",
               "law_ok", "draw_ms(8x8)", "draws/s"});
  table.add_row({"grid2x3/grid8x8", fmt_int(big.num_edges()),
                 fmt_int(big.num_vertices() - 1), fmt(chi.statistic, 1),
                 fmt(chi.threshold, 1), fmt(marginal_err, 12),
                 law_ok ? "yes" : "NO", fmt(draw_ms, 2),
                 fmt(draws_per_sec, 1)});
  table.print();
  json.add_record(
      {JsonSeries::text("experiment", "steadystate_spanning_tree"),
       JsonSeries::text("graph", "grid8x8"),
       JsonSeries::number("edges", big.num_edges()),
       JsonSeries::number("k", big.num_vertices() - 1),
       JsonSeries::number("trials", trials),
       JsonSeries::number("chi_square", chi.statistic, 2),
       JsonSeries::number("prime_ms", prime_ms, 3),
       JsonSeries::number("draw_ms", draw_ms, 4),
       JsonSeries::number("draws_per_sec", draws_per_sec, 1),
       JsonSeries::text("law_ok", law_ok ? "yes" : "no"),
       JsonSeries::boolean("regression", !law_ok)});
  return !law_ok;
}

}  // namespace

int main() {
  print_header(
      "EXP-LS", "intermediate-sampling front end at n = 10^6",
      "distillation serves exact draws from a million-item low-rank "
      "ensemble in milliseconds per draw (per-draw cost independent of "
      "n), bit-identical at every pool size, chi-square-consistent with "
      "enumeration at small n; the full-n session path is infeasible at "
      "n = 10^6 (estimated row)");
  JsonSeries json;

  std::printf("\n-- exactness at enumeration scale --\n");
  bool any_regression = exactness_block(json, /*persistent=*/false);
  any_regression = exactness_block(json, /*persistent=*/true) ||
                   any_regression;

  const std::size_t d = 24;
  const std::size_t k = 8;
  std::printf("\n-- scaling sweep: d=%zu k=%zu, serial draws --\n", d, k);
  std::vector<ScalePoint> points;
  points.push_back(measure_scale(10000, d, k, /*full_feasible=*/true,
                                 nullptr));
  points.push_back(measure_scale(100000, d, k, /*full_feasible=*/true,
                                 nullptr));
  points.push_back(measure_scale(1000000, d, k, /*full_feasible=*/false,
                                 &points.back()));

  Table table({"n", "prime_ms", "draw_ms", "accept", "full_prime_ms",
               "full_draw_ms", "draw_speedup", "identical"});
  for (const ScalePoint& point : points) {
    const double speedup = point.full_draw_ms / point.draw_ms;
    const std::string estimate_mark = point.full_estimated ? " (est)" : "";
    table.add_row({fmt_int(point.n), fmt(point.prime_ms, 1),
                   fmt(point.draw_ms, 3), fmt(point.accept_rate, 2),
                   fmt(point.full_prime_ms, 1) + estimate_mark,
                   fmt(point.full_draw_ms, 2) + estimate_mark,
                   fmt(speedup, 1) + "x",
                   point.identical ? "yes" : "NO"});
    any_regression = any_regression || !point.identical;
    json.add_record(
        {JsonSeries::text("experiment", "largescale_distill"),
         JsonSeries::text("family", "feature"),
         JsonSeries::number("n", point.n), JsonSeries::number("d", d),
         JsonSeries::number("k", k),
         JsonSeries::number("prime_ms", point.prime_ms, 3),
         JsonSeries::number("draw_ms", point.draw_ms, 4),
         JsonSeries::number("accept_rate", point.accept_rate, 3),
         JsonSeries::number("full_prime_ms", point.full_prime_ms, 3),
         JsonSeries::number("full_draw_ms", point.full_draw_ms, 3),
         JsonSeries::boolean("full_estimated", point.full_estimated),
         JsonSeries::number("draw_speedup_vs_full", speedup, 1),
         JsonSeries::text("identical", point.identical ? "yes" : "no"),
         JsonSeries::boolean("regression", !point.identical)});
  }
  table.print();

  std::printf("\n-- EXP-SS: steady-state draws at n = 10^6 --\n");
  any_regression = steady_state_block(json) || any_regression;

  std::printf("\n-- EXP-SS: spanning trees via transfer currents --\n");
  any_regression = spanning_tree_block(json) || any_regression;

  if (any_regression)
    std::printf("\n! REGRESSION: distilled law, pool-size identity, or "
                "steady-state speedup gate failed\n");
  json.write(bench_out_path("BENCH_largescale.json"));
  return 0;
}
