// Unconstrained DPPs (no cardinality constraint), via the marginal kernel.
//
// P[A ⊆ Y] = det(K_A) with K = L(I+L)^{-1}, for symmetric and
// nonsymmetric ensembles alike (paper §3.2). The class does not implement
// the fixed-size CountingOracle interface — sampling an unconstrained DPP
// goes through Remark 15 (draw |S| from the cardinality distribution, then
// run a k-DPP sampler) or through the filtering algorithm of Theorem 41.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace pardpp {

class UnconstrainedDpp {
 public:
  explicit UnconstrainedDpp(Matrix l, bool symmetric, bool validate = true);

  [[nodiscard]] std::size_t ground_size() const { return l_.rows(); }
  [[nodiscard]] bool symmetric() const noexcept { return symmetric_; }
  [[nodiscard]] const Matrix& ensemble() const noexcept { return l_; }

  /// K = L (I + L)^{-1}, cached.
  [[nodiscard]] const Matrix& kernel() const;

  /// log P[T ⊆ Y] = log det(K_T).
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const;

  /// P[i ∈ Y] = K_ii.
  [[nodiscard]] std::vector<double> marginals() const;

  /// log(det(L_S) / det(I + L)) — the exact mass of a specific set, used
  /// by enumeration ground truth.
  [[nodiscard]] double log_mass(std::span<const int> s) const;

  /// The conditional DPP given T ⊆ Y, over the remaining ground set.
  [[nodiscard]] UnconstrainedDpp condition_include(std::span<const int> t) const;

  /// log det(I + L) (cached).
  [[nodiscard]] double log_partition() const;

 private:
  Matrix l_;
  bool symmetric_;
  mutable std::optional<Matrix> kernel_;
  mutable std::optional<double> log_partition_;
};

}  // namespace pardpp
